//! The simulation driver: the full PIC cycle of the paper's Fig. 3.
//!
//! Each step: gather fields onto particles → push momenta (Boris/Vay)
//! and positions (leapfrog) → deposit currents (Esirkepov) → exchange
//! guard sums → advance Maxwell (B half / E / B half, PML-terminated) →
//! redistribute particles → advance the moving window. With mesh
//! refinement enabled, particles inside the patch deposit to the fine
//! grid (restricted onto the coarse patch and the parent) and gather
//! from the auxiliary grid, per §V-B of the paper.

use crate::balance::{self, CostTracker};
use crate::laser::LaserAntenna;
use crate::mr::{MrConfig, MrLevel};
use crate::particles::ParticleContainer;
use crate::species::{inject, Species};
use crate::telemetry::{
    scan_arrays, GuardTrip, PhaseTimes, Probes, SpeciesCount, StepRecord, Telemetry,
};
use mrpic_amr::{
    BoxArray, CommStats, DistributionMapping, Fab, FabArray, IndexBox, IntVect, Periodicity,
    Strategy,
};
use mrpic_field::cfl::dt_at;
use mrpic_field::fieldset::{
    fab_view, guard_vec, rho_stagger, view_of_fab_mut, view_over, Dim, FieldSet, GridGeom,
};
use mrpic_field::pml::Pml;
use mrpic_field::yee;
use mrpic_kernels::deposit::{deposit_rho2, deposit_rho3, esirkepov2, esirkepov3, JViews};
use mrpic_kernels::gather::{gather2, gather3, EmOut, EmViews};
use mrpic_kernels::lanes::{Lanes, DEFAULT_LANE_WIDTH, LANE_WIDTHS};
use mrpic_kernels::push::{gamma_of_u, push_position, push_position2};
use mrpic_kernels::shape::{Cubic, Linear, Quadratic};
use mrpic_kernels::view::{FieldView, FieldViewMut};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Runtime-selected particle shape order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShapeOrder {
    Linear,
    Quadratic,
    Cubic,
}

impl ShapeOrder {
    pub fn order(self) -> usize {
        match self {
            ShapeOrder::Linear => 1,
            ShapeOrder::Quadratic => 2,
            ShapeOrder::Cubic => 3,
        }
    }

    /// Guard cells needed by gather + Esirkepov deposition.
    pub fn ngrow(self) -> i64 {
        self.order() as i64 + 2
    }
}

/// Dispatch a generic-shape kernel call on a runtime order.
macro_rules! with_shape {
    ($order:expr, $S:ident, $body:expr) => {
        match $order {
            ShapeOrder::Linear => {
                type $S = Linear;
                $body
            }
            ShapeOrder::Quadratic => {
                type $S = Quadratic;
                $body
            }
            ShapeOrder::Cubic => {
                type $S = Cubic;
                $body
            }
        }
    };
}

/// Dispatch a lane-width-generic kernel call on a runtime width. The
/// widths mirror [`LANE_WIDTHS`]; anything else was rejected at build
/// time, so the fallback arm only keeps the match exhaustive.
macro_rules! with_lanes {
    ($lw:expr, $W:ident, $body:expr) => {
        match $lw {
            4 => {
                const $W: usize = 4;
                $body
            }
            16 => {
                const $W: usize = 16;
                $body
            }
            _ => {
                const $W: usize = DEFAULT_LANE_WIDTH;
                $body
            }
        }
    };
}

/// Numeric precision of the particle kernels (paper §V-A mixed-precision
/// mode). `F64` is the bitwise-reproducible default. `F32Particles`
/// stages per-box field windows and particle attributes in `f32`, runs
/// gather / momentum push / deposition in single precision, and keeps
/// positions and the global field state in `f64` (positions lose too
/// much resolution in `f32` once the moving window travels far from the
/// origin; the field solve stays `f64` so Gauss-law conservation is
/// limited only by the deposited currents).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Precision {
    #[default]
    F64,
    F32Particles,
}

impl Precision {
    /// Bytes per scalar in the particle kernels (roofline `wsize`).
    pub fn wsize(self) -> f64 {
        match self {
            Precision::F64 => 8.0,
            Precision::F32Particles => 4.0,
        }
    }
}

/// Moving-window configuration: the grid follows the laser at c along +x
/// starting at `start_time` (paper Table I capability (b)).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MovingWindow {
    pub start_time: f64,
    /// Fractional cells accumulated toward the next shift.
    pub accum: f64,
    /// Inject fresh plasma in the strip exposed at the leading edge.
    pub inject_at_front: bool,
}

/// Per-step accounting.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StepStats {
    pub pushed: usize,
    pub deleted: usize,
    pub window_shifts: u64,
    pub rebalances: u64,
    /// Wall seconds in particle kernels this step.
    pub particle_seconds: f64,
    /// Wall seconds in the field solve this step.
    pub field_seconds: f64,
    /// Wall seconds in guard/interface exchanges this step (subset of the
    /// particle/field phases above, not an additional phase).
    pub exchange_seconds: f64,
}

/// The paper's load-balance metric over one step's per-rank records:
/// max/mean of each rank's busy seconds. Busy time is particle work
/// plus exchange work *minus* the blocking recv-wait — a rank stalled
/// waiting on a hot neighbor is idle, not loaded, and counting the
/// stall used to bias the reported ratio toward 1.0 exactly when the
/// imbalance was worst. `None` for fewer than two ranks, where the
/// ratio is vacuous.
pub fn rank_imbalance(ranks: &[crate::exchange::RankStepComm]) -> Option<f64> {
    if ranks.len() < 2 {
        return None;
    }
    let busy: Vec<f64> = ranks
        .iter()
        .map(|r| (r.particle_seconds + r.exchange_seconds - r.recv_wait_seconds).max(0.0))
        .collect();
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    let max = busy.iter().fold(0.0f64, |a, &b| a.max(b));
    (mean > 0.0).then(|| max / mean)
}

/// Serial / rayon-threaded fallback for [`StepRecord::imbalance`]: the
/// same max/mean ratio over per-*box* cost instead of per-rank busy
/// time, so single-process runs (where no rank records exist) still
/// feed the LB trigger. `None` for fewer than two boxes or all-zero
/// costs.
///
/// [`StepRecord::imbalance`]: crate::telemetry::StepRecord::imbalance
pub fn box_imbalance(costs: &[f64]) -> Option<f64> {
    if costs.len() < 2 {
        return None;
    }
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let max = costs.iter().fold(0.0f64, |a, &b| a.max(b));
    (mean > 0.0).then(|| max / mean)
}

/// Cached handle for the per-box kernel-time histogram (nanoseconds per
/// box per species per step), fed while tracing is enabled.
fn box_kernel_hist() -> &'static mrpic_trace::metrics::Histogram {
    static H: std::sync::OnceLock<&'static mrpic_trace::metrics::Histogram> =
        std::sync::OnceLock::new();
    H.get_or_init(|| mrpic_trace::histogram("core.box_ns"))
}

/// Workspace buffers reused across boxes/steps.
#[derive(Default)]
struct Scratch {
    ex: Vec<f64>,
    ey: Vec<f64>,
    ez: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
    bz: Vec<f64>,
    x0: Vec<f64>,
    y0: Vec<f64>,
    z0: Vec<f64>,
    vy: Vec<f64>,
}

impl Scratch {
    fn ensure(&mut self, n: usize) {
        for v in [
            &mut self.ex,
            &mut self.ey,
            &mut self.ez,
            &mut self.bx,
            &mut self.by,
            &mut self.bz,
            &mut self.x0,
            &mut self.y0,
            &mut self.z0,
            &mut self.vy,
        ] {
            v.resize(n.max(v.len()), 0.0);
        }
    }
}

/// Checks a [`Scratch`] out of the shared pool; returns it on drop so
/// worker threads reuse warm buffers across boxes and steps.
struct ScratchGuard<'a> {
    pool: &'a Mutex<Vec<Scratch>>,
    sc: Scratch,
}

impl<'a> ScratchGuard<'a> {
    fn checkout(pool: &'a Mutex<Vec<Scratch>>) -> Self {
        let sc = pool.lock().unwrap().pop().unwrap_or_default();
        Self { pool, sc }
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        self.pool.lock().unwrap().push(std::mem::take(&mut self.sc));
    }
}

/// `f32` staging workspace for the mixed-precision particle path: field
/// windows, particle attributes, gathered fields, and per-box current
/// tiles all live in single precision; only positions and the global
/// field state stay `f64`.
#[derive(Default)]
struct Scratch32 {
    /// Staged field windows (Ex, Ey, Ez, Bx, By, Bz over the guarded box).
    fld: [Vec<f32>; 6],
    /// Gathered per-particle fields, same component order.
    em: [Vec<f32>; 6],
    /// Pre-push positions (cast once, reused as the deposit's old state).
    x0: Vec<f32>,
    y0: Vec<f32>,
    z0: Vec<f32>,
    /// Post-push positions.
    x1: Vec<f32>,
    y1: Vec<f32>,
    z1: Vec<f32>,
    ux: Vec<f32>,
    uy: Vec<f32>,
    uz: Vec<f32>,
    w: Vec<f32>,
    vy: Vec<f32>,
    /// Per-box current tiles, accumulated into the `f64` fabs afterwards.
    j: [Vec<f32>; 3],
}

impl Scratch32 {
    fn cast(dst: &mut Vec<f32>, src: &[f64]) {
        dst.clear();
        dst.extend(src.iter().map(|&v| v as f32));
    }
}

/// Pool guard for [`Scratch32`], mirroring [`ScratchGuard`].
struct Scratch32Guard<'a> {
    pool: &'a Mutex<Vec<Scratch32>>,
    sc: Scratch32,
}

impl<'a> Scratch32Guard<'a> {
    fn checkout(pool: &'a Mutex<Vec<Scratch32>>) -> Self {
        let sc = pool.lock().unwrap().pop().unwrap_or_default();
        Self { pool, sc }
    }
}

impl Drop for Scratch32Guard<'_> {
    fn drop(&mut self) {
        self.pool.lock().unwrap().push(std::mem::take(&mut self.sc));
    }
}

/// Single-precision copy of a field view with the owning view's layout.
fn stage_view<'a>(dst: &'a mut Vec<f32>, src: &FieldView<'_, f64>) -> FieldView<'a, f32> {
    Scratch32::cast(dst, src.data);
    FieldView {
        data: dst,
        lo: src.lo,
        nx: src.nx,
        nxy: src.nxy,
        half: src.half,
    }
}

/// Per-box fine-patch deposition buffer. Boxes deposit into their own
/// buffer during the parallel particle loop; buffers are then reduced
/// into the shared fine-grid currents in ascending box order, so the
/// result is bitwise independent of the thread count.
#[derive(Default)]
struct FineJBuf {
    used: bool,
    j: [Vec<f64>; 3],
}

/// One box-parallel particle work item: disjoint mutable pieces of the
/// simulation state for a single (box, particle-buffer) pair.
struct BoxTask<'a> {
    bi: usize,
    buf: &'a mut crate::particles::ParticleBuf,
    jx: &'a mut Fab,
    jy: &'a mut Fab,
    jz: &'a mut Fab,
    fine_j: &'a mut FineJBuf,
    seconds: &'a mut f64,
    /// Per-box [gather, push, deposit] seconds (telemetry phase split).
    phase: &'a mut [f64; 3],
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    dim: Dim,
    cells: IntVect,
    dx: [f64; 3],
    x0: [f64; 3],
    periodic: [bool; 3],
    cfl: f64,
    order: ShapeOrder,
    npml: Option<i64>,
    max_box: Option<IntVect>,
    window: Option<MovingWindow>,
    lb: Option<balance::LbPolicyCfg>,
    species: Vec<Species>,
    lasers: Vec<LaserAntenna>,
    sort_interval: u64,
    seed: u64,
    filter_passes: usize,
    use_optimized_kernels: bool,
    lane_width: usize,
    precision: Precision,
}

impl SimulationBuilder {
    pub fn new(dim: Dim) -> Self {
        Self {
            dim,
            cells: IntVect::new(64, 1, 64),
            dx: [1.0e-6; 3],
            x0: [0.0; 3],
            periodic: [false; 3],
            cfl: 0.7,
            order: ShapeOrder::Quadratic,
            npml: None,
            max_box: None,
            window: None,
            lb: None,
            species: Vec::new(),
            lasers: Vec::new(),
            sort_interval: 50,
            seed: 20220101,
            filter_passes: 0,
            use_optimized_kernels: true,
            lane_width: DEFAULT_LANE_WIDTH,
            precision: Precision::default(),
        }
    }

    pub fn domain(mut self, cells: IntVect, dx: [f64; 3], x0: [f64; 3]) -> Self {
        if self.dim == Dim::Two {
            assert_eq!(cells.y, 1, "2-D runs use a single y cell");
        }
        self.cells = cells;
        self.dx = dx;
        self.x0 = x0;
        self
    }

    pub fn periodic(mut self, p: [bool; 3]) -> Self {
        self.periodic = p;
        self
    }

    pub fn cfl(mut self, cfl: f64) -> Self {
        self.cfl = cfl;
        self
    }

    pub fn order(mut self, o: ShapeOrder) -> Self {
        self.order = o;
        self
    }

    pub fn pml(mut self, npml: i64) -> Self {
        self.npml = Some(npml);
        self
    }

    pub fn max_box(mut self, mb: IntVect) -> Self {
        self.max_box = Some(mb);
        self
    }

    pub fn moving_window(mut self, start_time: f64) -> Self {
        self.window = Some(MovingWindow {
            start_time,
            accum: 0.0,
            inject_at_front: true,
        });
        self
    }

    /// Enable the online trigger → predict → adopt load-balance policy
    /// ([`balance::LbPolicy`]).
    pub fn load_balance(mut self, cfg: balance::LbPolicyCfg) -> Self {
        self.lb = Some(cfg);
        self
    }

    pub fn add_species(mut self, sp: Species) -> Self {
        self.species.push(sp);
        self
    }

    pub fn add_laser(mut self, l: LaserAntenna) -> Self {
        self.lasers.push(l);
        self
    }

    pub fn sort_interval(mut self, n: u64) -> Self {
        self.sort_interval = n;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Binomial current-smoothing passes per step (0 = off).
    pub fn filter_passes(mut self, n: usize) -> Self {
        self.filter_passes = n;
        self
    }

    /// Use the restructured (paper sec. V-A.1) gather/deposition kernels.
    /// On by default; pass `false` to fall back to the per-particle
    /// reference kernels.
    pub fn optimized_kernels(mut self, on: bool) -> Self {
        self.use_optimized_kernels = on;
        self
    }

    /// Lane width `W` of the blocked kernels (particles per SIMD tile).
    pub fn lane_width(mut self, w: usize) -> Self {
        assert!(
            LANE_WIDTHS.contains(&w),
            "lane width must be one of {LANE_WIDTHS:?}"
        );
        self.lane_width = w;
        self
    }

    /// Particle-kernel precision mode (see [`Precision`]).
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Allocate fields, inject initial plasma, compute dt.
    pub fn build(self) -> Simulation {
        let domain = IndexBox::from_size(self.cells);
        let ba = match self.max_box {
            Some(mb) => BoxArray::chop(domain, mb),
            None => BoxArray::single(domain),
        };
        let geom = GridGeom {
            dx: self.dx,
            x0: self.x0,
        };
        let period = Periodicity::new(domain, self.periodic);
        let ngrow = self.order.ngrow();
        let fs = FieldSet::new(self.dim, ba.clone(), geom, period, ngrow);
        let pml = self
            .npml
            .map(|n| Pml::new(self.dim, domain, geom, self.periodic, n));
        let dt = dt_at(self.dim, &self.dx, self.cfl);
        let mut parts = Vec::new();
        for (si, sp) in self.species.iter().enumerate() {
            let mut pc = ParticleContainer::new(ba.len());
            inject(
                sp,
                self.dim,
                &geom,
                &ba,
                &domain,
                &mut pc,
                self.seed ^ (si as u64),
            );
            parts.push(pc);
        }
        let nranks = self.lb.map(|l| l.nranks).unwrap_or(1);
        let dm = DistributionMapping::build(&ba, nranks, Strategy::SpaceFillingCurve, &[]);
        // Seed the tracker from the fab count, not ba.len(): the step
        // loop records one sample per fab, and the two diverge as soon
        // as an MR level contributes fabs.
        let nfabs = fs.nfabs();
        Simulation {
            dim: self.dim,
            order: self.order,
            cfl: self.cfl,
            fs,
            pml,
            mr: None,
            species: self.species,
            parts,
            lasers: self.lasers,
            window: self.window,
            lb: self.lb.map(balance::LbPolicy::new),
            dm,
            cost: CostTracker::new(nfabs),
            dt,
            time: 0.0,
            istep: 0,
            sort_interval: self.sort_interval,
            seed: self.seed,
            filter_passes: self.filter_passes,
            use_optimized_kernels: self.use_optimized_kernels,
            lane_width: self.lane_width,
            precision: self.precision,
            scratch_pool: Mutex::new(Vec::new()),
            scratch32_pool: Mutex::new(Vec::new()),
            box_seconds: Vec::new(),
            box_phase: Vec::new(),
            fine_j_pool: Vec::new(),
            metrics_mark: Vec::new(),
            stats: StepStats::default(),
            telemetry: Telemetry::default(),
        }
    }
}

/// A running PIC simulation.
pub struct Simulation {
    pub dim: Dim,
    pub order: ShapeOrder,
    pub cfl: f64,
    pub fs: FieldSet,
    pub pml: Option<Pml>,
    pub mr: Option<MrLevel>,
    pub species: Vec<Species>,
    pub parts: Vec<ParticleContainer>,
    pub lasers: Vec<LaserAntenna>,
    pub window: Option<MovingWindow>,
    /// Online load-balance policy; `None` disables live rebalancing.
    pub lb: Option<balance::LbPolicy>,
    pub dm: DistributionMapping,
    pub cost: CostTracker,
    pub dt: f64,
    pub time: f64,
    pub istep: u64,
    pub sort_interval: u64,
    pub seed: u64,
    /// Binomial current-filter passes per step.
    pub filter_passes: usize,
    /// Use the restructured gather/deposition kernels.
    pub use_optimized_kernels: bool,
    /// Lane width of the blocked kernels (one of [`LANE_WIDTHS`]).
    pub lane_width: usize,
    /// Particle-kernel precision mode.
    pub precision: Precision,
    /// Pool of per-thread particle workspaces.
    scratch_pool: Mutex<Vec<Scratch>>,
    /// Pool of per-thread `f32` staging workspaces (mixed precision).
    scratch32_pool: Mutex<Vec<Scratch32>>,
    /// Per-box particle-phase seconds of the current step (reused).
    box_seconds: Vec<f64>,
    /// Per-box [gather, push, deposit] seconds of the current step.
    box_phase: Vec<[f64; 3]>,
    /// Per-box fine-patch deposition buffers (reused).
    fine_j_pool: Vec<FineJBuf>,
    /// Metrics-registry snapshot at the end of the previous step, so a
    /// traced step can report per-step histogram deltas in telemetry.
    metrics_mark: Vec<mrpic_trace::metrics::HistSnapshot>,
    pub stats: StepStats,
    /// Step records, physics probes, and NaN/Inf guards.
    pub telemetry: Telemetry,
}

impl Simulation {
    /// Attach a mesh-refinement patch (before the first step).
    ///
    /// Without subcycling every level advances at the *fine* Courant
    /// step. With `cfg.subcycle` the parent keeps the coarse step while
    /// the patch grids take `rr` sub-steps — the particle displacement
    /// per step must then stay below one *fine* cell for the Esirkepov
    /// window, which bounds the usable Courant fraction.
    /// Patches may also be added *dynamically* at any step boundary: the
    /// parent always holds the complete coarse solution, and the fresh
    /// fine/coarse grids start at zero — by the linearity construction
    /// all pre-existing field content is attributed to "exterior"
    /// sources, which is exactly consistent.
    pub fn add_mr_patch(&mut self, cfg: MrConfig) {
        assert!(self.mr.is_none(), "one refinement patch at a time");
        assert!(
            self.precision == Precision::F64,
            "mesh refinement requires f64 precision (the fine/coarse \
             linearity construction is not validated in mixed precision)"
        );
        let lvl = MrLevel::new(&self.fs, cfg, self.order.ngrow());
        if cfg.subcycle {
            // c dt < dx_fine = dx/rr requires cfl < sqrt(d)/rr.
            let d = self.dim.axes().len() as f64;
            let max_cfl = d.sqrt() / cfg.rr as f64;
            assert!(
                self.cfl < max_cfl,
                "subcycling at rr = {} needs cfl < {max_cfl:.3}                  (particle moves must stay below one fine cell)",
                cfg.rr
            );
            self.dt = dt_at(self.dim, &self.fs.geom.dx, self.cfl);
        } else {
            self.dt = dt_at(self.dim, &lvl.fine.geom.dx, self.cfl);
        }
        self.mr = Some(lvl);
    }

    /// Remove the refinement patch (the parent holds the complete coarse
    /// solution, so this is safe at any step boundary). Restores the
    /// coarse-grid time step.
    pub fn remove_mr_patch(&mut self) {
        if self.mr.take().is_some() {
            self.dt = dt_at(self.dim, &self.fs.geom.dx, self.cfl);
        }
    }

    /// Total macroparticles.
    pub fn total_particles(&self) -> usize {
        self.parts.iter().map(|p| p.total()).sum()
    }

    /// Total cells including MR patch cells (for FOM-style accounting).
    pub fn total_cells(&self) -> i64 {
        let base = self.fs.boxarray().total_cells();
        match &self.mr {
            Some(lvl) => {
                base + lvl.fine.boxarray().total_cells() + lvl.coarse.boxarray().total_cells()
            }
            None => base,
        }
    }

    /// Total wall seconds spent in guard/interface exchanges since
    /// construction (parent grids, PML shells, MR patch grids).
    pub fn comm_seconds_total(&self) -> f64 {
        let mut s = self.fs.comm_seconds();
        if let Some(pml) = &self.pml {
            s += pml.comm_seconds();
        }
        if let Some(mr) = &self.mr {
            s += mr.comm_seconds();
        }
        s
    }

    /// Total exchange-plan constructions since start. Steady-state steps
    /// must not add to this once plans are warm.
    pub fn plan_builds_total(&self) -> u64 {
        let mut n = self.fs.plan_builds();
        if let Some(pml) = &self.pml {
            n += pml.plan_builds();
        }
        if let Some(mr) = &self.mr {
            n += mr.plan_builds();
        }
        n
    }

    /// Aggregate communication counters since construction (parent grids,
    /// PML shells, MR patch grids).
    pub fn comm_stats_total(&self) -> CommStats {
        let mut s = self.fs.comm_stats();
        if let Some(pml) = &self.pml {
            s.merge(&pml.comm_stats());
        }
        if let Some(mr) = &self.mr {
            s.merge(&mr.comm_stats());
        }
        s
    }

    /// NaN/Inf sentinel, run once per sentinel step after the field
    /// advance. The fast path scans only the E arrays of the parent and
    /// (with MR) the aux grids: every upstream non-finite value funnels
    /// into those within at most one step — a bad J enters E through the
    /// E update, a bad B through the next curl, and bad fine/coarse
    /// fields through the per-step aux rebuild. Only a hit pays for the
    /// full rescan that walks the producers in step order (deposit
    /// currents, then the field grids) to attribute the trip to the
    /// phase and grid where the value originated.
    fn sentinel_fields(&self, step: u64) -> Option<GuardTrip> {
        let e_names = ["Ex", "Ey", "Ez"];
        let b_names = ["Bx", "By", "Bz"];
        let j_names = ["Jx", "Jy", "Jz"];
        let scan_e = |e: &[FabArray; 3]| scan_arrays(e_names.into_iter().zip(e.iter()));
        let detected = scan_e(&self.fs.e).is_some()
            || self
                .mr
                .as_ref()
                .is_some_and(|mr| scan_e(&mr.aux.e).is_some());
        if !detected {
            return None;
        }
        let scan_eb = |e: &[FabArray; 3], b: &[FabArray; 3]| {
            scan_e(e).or_else(|| scan_arrays(b_names.into_iter().zip(b.iter())))
        };
        if let Some(j) = scan_arrays(j_names.into_iter().zip(self.fs.j.iter())) {
            return Some(Self::trip(step, "deposit", "parent", j));
        }
        if let Some(h) = scan_eb(&self.fs.e, &self.fs.b) {
            return Some(Self::trip(step, "maxwell", "parent", h));
        }
        if let Some(mr) = &self.mr {
            if let Some(j) = scan_arrays(j_names.into_iter().zip(mr.fine.j.iter())) {
                return Some(Self::trip(step, "deposit", "mr.fine", j));
            }
            for (grid, fs) in [
                ("mr.fine", &mr.fine),
                ("mr.coarse", &mr.coarse),
                ("mr.aux", &mr.aux),
            ] {
                if let Some(h) = scan_eb(&fs.e, &fs.b) {
                    return Some(Self::trip(step, "mr", grid, h));
                }
            }
        }
        None
    }

    fn trip(step: u64, phase: &str, grid: &str, hit: crate::telemetry::SentinelHit) -> GuardTrip {
        GuardTrip {
            step,
            phase: phase.to_string(),
            grid: grid.to_string(),
            component: hit.component,
            box_id: hit.box_id,
        }
    }

    /// Advance one full PIC step (single-rank communication backend).
    pub fn step(&mut self) -> StepStats {
        self.step_with(&mut crate::exchange::LocalComm)
    }

    /// Advance one full PIC step, routing all cross-ownership
    /// communication (guard fills, current sums, particle
    /// redistribution, rebalance adoption) through `comm`. Every
    /// conforming backend produces bitwise identical state — see the
    /// determinism contract on [`crate::exchange::StepComm`].
    pub fn step_with(&mut self, comm: &mut dyn crate::exchange::StepComm) -> StepStats {
        let mut stats = StepStats::default();
        let mut phases = PhaseTimes::default();
        let step_idx = self.istep;
        comm.begin_step(step_idx);
        let dt = self.dt;
        let comm0 = self.comm_stats_total();
        let sentinel_due = self.telemetry.sentinel_due(step_idx);
        let mut guard: Option<GuardTrip> = None;
        let _step_span = mrpic_trace::span!("step", -1, step_idx);
        let t_step = std::time::Instant::now();
        let t_part = t_step;

        // Periodic locality sort.
        let t0 = std::time::Instant::now();
        let sp = mrpic_trace::span!("sort");
        if self.sort_interval > 0 && self.istep.is_multiple_of(self.sort_interval) && self.istep > 0
        {
            let geom = self.fs.geom;
            for pc in &mut self.parts {
                for buf in &mut pc.bufs {
                    buf.sort_by_cell(&geom);
                }
            }
        }
        drop(sp);
        phases.sort = t0.elapsed().as_secs_f64();

        // 1. Zero currents.
        self.fs.zero_j();
        if let Some(mr) = &mut self.mr {
            mr.zero_j();
        }

        // 2. Particle loop: gather, push, deposit (box-parallel).
        let nfabs = self.fs.nfabs();
        self.box_seconds.resize(nfabs, 0.0);
        self.box_seconds.fill(0.0);
        self.box_phase.resize(nfabs, [0.0; 3]);
        self.box_phase.fill([0.0; 3]);
        let nspecies = self.species.len();
        let sp = mrpic_trace::span!("particle");
        for si in 0..nspecies {
            stats.pushed += self.advance_species(si, dt);
        }
        drop(sp);
        for ph in &self.box_phase {
            phases.gather += ph[0];
            phases.push += ph[1];
            phases.deposit += ph[2];
        }

        // 3. Current exchanges, smoothing and MR coupling.
        let t0 = std::time::Instant::now();
        let sp = mrpic_trace::span!("sum");
        {
            let period = self.fs.period;
            let [j0, j1, j2] = &mut self.fs.j;
            comm.sum_group(&mut [j0, j1, j2], &period);
        }
        if self.filter_passes > 0 {
            mrpic_field::filter::filter_current(&mut self.fs, self.filter_passes);
        }
        if let Some(mr) = &mut self.mr {
            let margin = crate::mr::restriction_margin(self.order.order(), mr.cfg.rr);
            mr.couple_currents(&mut self.fs, margin);
        }

        // 4. Laser antennas (time-centered with J at n + 1/2).
        let t_half = self.time + 0.5 * dt;
        let lasers = std::mem::take(&mut self.lasers);
        for l in &lasers {
            if l.active(&self.fs) {
                l.deposit(&mut self.fs, t_half);
            }
        }
        self.lasers = lasers;
        drop(sp);
        phases.sum = t0.elapsed().as_secs_f64();
        stats.particle_seconds = t_part.elapsed().as_secs_f64();

        // 5. Field advance (B half / E / B half) with PML exchanges.
        let t_field = std::time::Instant::now();
        let sp = mrpic_trace::span!("maxwell");
        self.advance_fields(dt, comm);
        drop(sp);
        phases.maxwell = t_field.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let sp = mrpic_trace::span!("mr");
        if let Some(mr) = &mut self.mr {
            mr.advance_fields(dt);
            mr.build_aux(&self.fs);
        }
        drop(sp);
        phases.mr = t0.elapsed().as_secs_f64();
        stats.field_seconds = t_field.elapsed().as_secs_f64();

        if sentinel_due {
            guard = self.sentinel_fields(step_idx);
        }

        // 6. Particle redistribution.
        let t0 = std::time::Instant::now();
        let sp = mrpic_trace::span!("redistribute");
        let geom = self.fs.geom;
        let period = self.fs.period;
        for pc in &mut self.parts {
            stats.deleted += comm.redistribute(pc, self.fs.boxarray(), &geom, &period);
        }
        drop(sp);
        phases.redistribute = t0.elapsed().as_secs_f64();

        // 7. Moving window.
        let t0 = std::time::Instant::now();
        let sp = mrpic_trace::span!("window");
        self.time += dt;
        self.istep += 1;
        if let Some(mut win) = self.window {
            if self.time >= win.start_time {
                win.accum += mrpic_kernels::constants::C * dt / self.fs.geom.dx[0];
                while win.accum >= 1.0 {
                    win.accum -= 1.0;
                    self.shift_window_once(win.inject_at_front);
                    stats.window_shifts += 1;
                }
            }
            self.window = Some(win);
        }
        drop(sp);
        phases.window = t0.elapsed().as_secs_f64();

        // 8. Cost tracking & trace-driven dynamic load balancing.
        let t0 = std::time::Instant::now();
        let sp = mrpic_trace::span!("lb");
        for s in &mut self.box_seconds {
            *s = s.max(1e-9);
        }
        match self.lb.as_ref().map(|p| p.cfg().cost_source) {
            Some(balance::CostSource::Heuristic) => {
                let ba = self.fs.boxarray();
                let cells: Vec<i64> = ba.iter().map(|b| b.num_cells()).collect();
                let particles: Vec<usize> = (0..ba.len())
                    .map(|bi| self.parts.iter().map(|pc| pc.bufs[bi].len()).sum())
                    .collect();
                self.cost.record_heuristic(&cells, &particles);
            }
            _ => self.cost.record(&self.box_seconds),
        }
        comm.note_box_seconds(&self.box_seconds);
        // The per-rank records are complete once the box seconds are
        // attributed; drain them here so *this* step's measurement can
        // drive the rebalance trigger. (Migration traffic from an
        // adoption below is accounted to the next step's records.)
        let rank_records = comm.take_rank_records();
        let fault_stats = comm.take_fault_stats();
        // Telemetry imbalance, two provenances: per-rank busy time when
        // rank records exist, per-box cost max/mean otherwise.
        let imbalance = rank_imbalance(&rank_records).or_else(|| box_imbalance(&self.box_seconds));
        let mut lb_decision: Option<balance::LbDecision> = None;
        // Take the policy out of `self` so candidate evaluation can
        // borrow the rest of the simulation state.
        if let Some(mut policy) = self.lb.take() {
            // Trigger signal: the measured wall-clock metric, except in
            // heuristic mode where the mapping imbalance over FOM costs
            // keeps decisions bit-reproducible across runs.
            let trigger_metric = match policy.cfg().cost_source {
                balance::CostSource::Heuristic => self.dm.imbalance(self.cost.costs()),
                balance::CostSource::Measured => {
                    imbalance.unwrap_or_else(|| self.dm.imbalance(self.cost.costs()))
                }
            };
            // Last step's evaluation gets its realized metric and goes
            // out with this step's record.
            lb_decision = policy.finish_pending(Some(trigger_metric));
            if policy.observe(trigger_metric) {
                let _dspan = mrpic_trace::span!("lb_decision", -1, step_idx);
                let per_box_bytes = self.migration_bytes_per_box();
                let adopt = policy.evaluate(
                    step_idx,
                    trigger_metric,
                    self.fs.boxarray(),
                    &self.dm,
                    self.cost.costs(),
                    &per_box_bytes,
                    self.fs.ngrow,
                );
                if let Some(mapping) = adopt {
                    stats.rebalances += 1;
                    // Physically migrate fab data and particle tiles to
                    // the new owners (a no-op in a single address space).
                    comm.adopt_mapping(&self.dm, &mapping, &mut self.fs, &mut self.parts);
                    // Ownership changed: conservatively drop cached plans.
                    self.fs.invalidate_plans();
                    self.dm = mapping;
                }
            }
            self.lb = Some(policy);
        }
        drop(sp);
        phases.lb = t0.elapsed().as_secs_f64();

        let comm_delta = self.comm_stats_total().delta_since(&comm0);
        phases.fill = comm_delta.seconds;
        stats.exchange_seconds = comm_delta.seconds;
        self.stats = stats;
        // Per-step deltas of the trace metrics registry (message bytes,
        // recv-wait, per-box kernel times, ...), only while tracing.
        let trace_hists = if mrpic_trace::enabled() {
            let (summaries, mark) = mrpic_trace::metrics::summaries_since(&self.metrics_mark);
            self.metrics_mark = mark;
            summaries
        } else {
            Vec::new()
        };

        if self.telemetry.cfg.enabled {
            let probes = self.telemetry.probes_due(step_idx).then(|| Probes {
                field_energy: mrpic_field::energy::field_energy(&self.fs),
                gauss_residual: self.gauss_residual_norm(),
            });
            let particles = self
                .species
                .iter()
                .enumerate()
                .map(|(si, sp)| SpeciesCount {
                    name: sp.name.clone(),
                    count: self.parts[si].total() as u64,
                })
                .collect();
            self.telemetry.record(StepRecord {
                step: step_idx,
                time: self.time,
                dt,
                seconds: t_step.elapsed().as_secs_f64(),
                phases,
                comm: comm_delta,
                particles,
                pushed: stats.pushed as u64,
                deleted: stats.deleted as u64,
                window_shifts: stats.window_shifts,
                rebalances: stats.rebalances,
                probes,
                guard,
                rank_count: (!rank_records.is_empty()).then_some(rank_records.len()),
                ranks: rank_records,
                faults: fault_stats,
                imbalance,
                lb: lb_decision,
                trace_hists,
                precision: self.precision,
            });
        }
        stats
    }

    /// Order-fixed FNV-1a digest of the complete physics state: step
    /// and time, every parent-level fab, the MR patch's fine/coarse/aux
    /// fields, and every particle component, all hashed as raw `f64`
    /// bits. Two runs whose digests agree hold bitwise-identical state
    /// (up to hash collision); `mrpic_run` writes it to `summary.json`
    /// so separate OS processes — e.g. the socket-transport rank mesh —
    /// can prove state equivalence without sharing an address space.
    pub fn state_digest(&self) -> u64 {
        fn fnv(h: &mut u64, v: u64) {
            *h ^= v;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        fn fnv_fs(h: &mut u64, fs: &FieldSet) {
            for fa in fs.e.iter().chain(&fs.b).chain(&fs.j) {
                for bi in 0..fa.nfabs() {
                    for v in fa.fab(bi).raw() {
                        fnv(h, v.to_bits());
                    }
                }
            }
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        fnv(&mut h, self.istep);
        fnv(&mut h, self.time.to_bits());
        fnv_fs(&mut h, &self.fs);
        if let Some(mr) = &self.mr {
            fnv_fs(&mut h, &mr.fine);
            fnv_fs(&mut h, &mr.coarse);
            fnv_fs(&mut h, &mr.aux);
        }
        for pc in &self.parts {
            for buf in &pc.bufs {
                fnv(&mut h, buf.len() as u64);
                for comp in [&buf.x, &buf.y, &buf.z, &buf.ux, &buf.uy, &buf.uz, &buf.w] {
                    for v in comp {
                        fnv(&mut h, v.to_bits());
                    }
                }
            }
        }
        h
    }

    /// Payload bytes that would move if each box changed owner: the
    /// nine parent-level fab raw slices plus every species' 7-`f64`
    /// particle tuples — the exact wire format of the `mrpic-dist`
    /// migration frames, so the policy's migration pricing matches what
    /// an adoption actually ships.
    fn migration_bytes_per_box(&self) -> Vec<u64> {
        let nboxes = self.fs.nfabs();
        let mut out = vec![0u64; nboxes];
        for (bi, b) in out.iter_mut().enumerate() {
            for fa in self.fs.e.iter().chain(&self.fs.b).chain(&self.fs.j) {
                *b += 8 * fa.fab(bi).raw().len() as u64;
            }
            for pc in &self.parts {
                *b += 8 * 7 * pc.bufs[bi].len() as u64;
            }
        }
        out
    }

    /// Max-norm of the Gauss-law residual `div E - rho/eps0` over interior
    /// nodes, with charge deposited at the simulation's shape order.
    ///
    /// The Esirkepov + Yee combination conserves this residual pointwise,
    /// so it should hold its initial value to near machine precision; a
    /// drift flags a charge-conservation bug. Sources that bypass
    /// Esirkepov (laser antenna currents) legitimately move it near their
    /// injection plane. Nodes within `order + 3` cells of a domain edge
    /// are excluded (PML, window injection, and deposition clouds
    /// straddling the boundary).
    pub fn gauss_residual_norm(&self) -> f64 {
        let dim = self.dim;
        let order = self.order;
        let geom = self.fs.geom;
        let kg = geom.kernel_geom();
        let ngrow = guard_vec(dim, order.ngrow());
        // Fresh array: its CommStats are dropped with it, so the probe
        // does not pollute the step's comm delta.
        let mut rho = FabArray::new_vec(self.fs.boxarray().clone(), rho_stagger(dim), 1, ngrow);
        for (si, pc) in self.parts.iter().enumerate() {
            let q = self.species[si].charge;
            for (bi, buf) in pc.bufs.iter().enumerate() {
                if buf.is_empty() {
                    continue;
                }
                let mut view = view_of_fab_mut(rho.fab_mut(bi));
                with_shape!(
                    order,
                    S,
                    match dim {
                        Dim::Three => deposit_rho3::<S, f64>(
                            &buf.x, &buf.y, &buf.z, &buf.w, q, &kg, &mut view,
                        ),
                        Dim::Two =>
                            deposit_rho2::<S, f64>(&buf.x, &buf.z, &buf.w, q, &kg, &mut view,),
                    }
                );
            }
        }
        rho.sum_boundary(&self.fs.period);
        let eps0 = mrpic_kernels::constants::EPS0;
        let dom = self.fs.domain();
        let m = order.ngrow() + 1;
        let mut max_resid = 0.0f64;
        for bi in 0..self.fs.nfabs() {
            let fab = rho.fab(bi);
            // Point boxes are half-open; clip to inclusive node ranges at
            // least `m` nodes inside the domain (nodes span lo..=dom.hi).
            let vb = fab.valid_pts();
            let lo = IntVect::new(
                vb.lo.x.max(dom.lo.x + m),
                if dim == Dim::Two {
                    vb.lo.y
                } else {
                    vb.lo.y.max(dom.lo.y + m)
                },
                vb.lo.z.max(dom.lo.z + m),
            );
            let hi = IntVect::new(
                (vb.hi.x - 1).min(dom.hi.x - m),
                if dim == Dim::Two {
                    vb.hi.y - 1
                } else {
                    (vb.hi.y - 1).min(dom.hi.y - m)
                },
                (vb.hi.z - 1).min(dom.hi.z - m),
            );
            let (ex, ey, ez) = (
                self.fs.e[0].fab(bi),
                self.fs.e[1].fab(bi),
                self.fs.e[2].fab(bi),
            );
            for k in lo.z..=hi.z {
                for jy in lo.y..=hi.y {
                    for i in lo.x..=hi.x {
                        let p = IntVect::new(i, jy, k);
                        let mut dive = (ex.get(0, p) - ex.get(0, IntVect::new(i - 1, jy, k)))
                            / geom.dx[0]
                            + (ez.get(0, p) - ez.get(0, IntVect::new(i, jy, k - 1))) / geom.dx[2];
                        if dim == Dim::Three {
                            dive +=
                                (ey.get(0, p) - ey.get(0, IntVect::new(i, jy - 1, k))) / geom.dx[1];
                        }
                        let r = fab.get(0, p);
                        max_resid = max_resid.max((dive - r / eps0).abs());
                    }
                }
            }
        }
        max_resid
    }

    /// Gather/push/deposit for one species, box-parallel: every (box,
    /// particle-buffer) pair is an independent work item with disjoint
    /// `&mut` views of the parent currents. Fine-patch deposition goes to
    /// per-box buffers reduced in ascending box order afterwards, and the
    /// per-box cost timers live on the work items, so the physics *and*
    /// the accounting are bitwise independent of the thread count.
    fn advance_species(&mut self, si: usize, dt: f64) -> usize {
        if self.precision == Precision::F32Particles {
            return self.advance_species_f32(si, dt);
        }
        let dim = self.dim;
        let order = self.order;
        let sp_charge = self.species[si].charge;
        let sp_mass = self.species[si].mass;
        let pusher = self.species[si].pusher;
        let qmdt2 = sp_charge * dt / (2.0 * sp_mass);
        let geom = self.fs.geom.kernel_geom();
        let optimized = self.use_optimized_kernels;
        let lane_width = self.lane_width;
        // MR routing regions in physical coordinates.
        let mr_regions = self
            .mr
            .as_ref()
            .map(|mr| (mr.patch_phys(&self.fs.geom), mr.gather_phys(&self.fs.geom)));
        let nboxes = self.fs.nfabs();
        self.fine_j_pool.resize_with(nboxes, FineJBuf::default);
        // Split the state into disjoint borrows: E/B shared (gather
        // source), J components mutable per box (deposition target).
        let mr = self.mr.as_ref();
        let FieldSet { e, b, j, .. } = &mut self.fs;
        let (e, b) = (&*e, &*b);
        let [jx_arr, jy_arr, jz_arr] = j;
        let mut pushed = 0usize;
        let mut tasks: Vec<BoxTask<'_>> = Vec::with_capacity(nboxes);
        {
            let mut jxs = jx_arr.fabs_mut().iter_mut();
            let mut jys = jy_arr.fabs_mut().iter_mut();
            let mut jzs = jz_arr.fabs_mut().iter_mut();
            let mut fine = self.fine_j_pool.iter_mut();
            let mut secs = self.box_seconds.iter_mut();
            let mut phs = self.box_phase.iter_mut();
            for (bi, buf) in self.parts[si].bufs.iter_mut().enumerate() {
                let jx = jxs.next().expect("J layout matches particle boxes");
                let jy = jys.next().expect("J layout matches particle boxes");
                let jz = jzs.next().expect("J layout matches particle boxes");
                let fine_j = fine.next().expect("pool sized to nboxes");
                let seconds = secs.next().expect("box_seconds sized to nboxes");
                let phase = phs.next().expect("box_phase sized to nboxes");
                if buf.is_empty() {
                    continue;
                }
                pushed += buf.len();
                tasks.push(BoxTask {
                    bi,
                    buf,
                    jx,
                    jy,
                    jz,
                    fine_j,
                    seconds,
                    phase,
                });
            }
        }
        let pool = &self.scratch_pool;
        tasks.par_iter_mut().for_each_init(
            || ScratchGuard::checkout(pool),
            |guard, task| {
                let _box_span = mrpic_trace::span!("box", -1, task.bi);
                let gather_span = mrpic_trace::span!("gather", -1, task.bi);
                let t0 = std::time::Instant::now();
                let sc = &mut guard.sc;
                let n = task.buf.len();
                sc.ensure(n);
                // Partition for MR routing: [aux-gather | transition | outside].
                let (c_aux, c_fine) = match &mr_regions {
                    Some(((plo, phi), (glo, ghi))) => {
                        let (plo, phi, glo, ghi) = (*plo, *phi, *glo, *ghi);
                        let in_patch = move |x: f64, y: f64, z: f64| {
                            x >= plo[0]
                                && x < phi[0]
                                && (dim == Dim::Two || (y >= plo[1] && y < phi[1]))
                                && z >= plo[2]
                                && z < phi[2]
                        };
                        let in_gather = move |x: f64, y: f64, z: f64| {
                            x >= glo[0]
                                && x < ghi[0]
                                && (dim == Dim::Two || (y >= glo[1] && y < ghi[1]))
                                && z >= glo[2]
                                && z < ghi[2]
                        };
                        task.buf.partition3(in_patch, in_gather)
                    }
                    None => (0, 0),
                };
                let buf = &mut *task.buf;
                // Gather: [0..c_aux) from the MR aux grid, rest from parent.
                if c_aux > 0 {
                    let mut out_aux = EmOut {
                        ex: &mut sc.ex[..c_aux],
                        ey: &mut sc.ey[..c_aux],
                        ez: &mut sc.ez[..c_aux],
                        bx: &mut sc.bx[..c_aux],
                        by: &mut sc.by[..c_aux],
                        bz: &mut sc.bz[..c_aux],
                    };
                    let mr = mr.expect("partitioned => MR present");
                    let views = mr.aux.em_views(0);
                    let aux_geom = mr.aux.geom.kernel_geom();
                    with_shape!(
                        order,
                        S,
                        match dim {
                            Dim::Three => gather3::<S, f64>(
                                &buf.x[..c_aux],
                                &buf.y[..c_aux],
                                &buf.z[..c_aux],
                                &aux_geom,
                                &views,
                                &mut out_aux,
                            ),
                            Dim::Two => gather2::<S, f64>(
                                &buf.x[..c_aux],
                                &buf.z[..c_aux],
                                &aux_geom,
                                &views,
                                &mut out_aux,
                            ),
                        }
                    );
                }
                if c_aux < n {
                    let bi = task.bi;
                    let views = EmViews {
                        ex: fab_view(&e[0], bi),
                        ey: fab_view(&e[1], bi),
                        ez: fab_view(&e[2], bi),
                        bx: fab_view(&b[0], bi),
                        by: fab_view(&b[1], bi),
                        bz: fab_view(&b[2], bi),
                    };
                    let mut out = EmOut {
                        ex: &mut sc.ex[c_aux..n],
                        ey: &mut sc.ey[c_aux..n],
                        ez: &mut sc.ez[c_aux..n],
                        bx: &mut sc.bx[c_aux..n],
                        by: &mut sc.by[c_aux..n],
                        bz: &mut sc.bz[c_aux..n],
                    };
                    with_shape!(
                        order,
                        S,
                        match dim {
                            Dim::Three if optimized => with_lanes!(
                                lane_width,
                                W,
                                Lanes::<W>::gather3::<S, f64>(
                                    &buf.x[c_aux..n],
                                    &buf.y[c_aux..n],
                                    &buf.z[c_aux..n],
                                    &geom,
                                    &views,
                                    &mut out,
                                )
                            ),
                            Dim::Three => gather3::<S, f64>(
                                &buf.x[c_aux..n],
                                &buf.y[c_aux..n],
                                &buf.z[c_aux..n],
                                &geom,
                                &views,
                                &mut out,
                            ),
                            Dim::Two if optimized => with_lanes!(
                                lane_width,
                                W,
                                Lanes::<W>::gather2::<S, f64>(
                                    &buf.x[c_aux..n],
                                    &buf.z[c_aux..n],
                                    &geom,
                                    &views,
                                    &mut out,
                                )
                            ),
                            Dim::Two => gather2::<S, f64>(
                                &buf.x[c_aux..n],
                                &buf.z[c_aux..n],
                                &geom,
                                &views,
                                &mut out,
                            ),
                        }
                    );
                }
                drop(gather_span);
                let push_span = mrpic_trace::span!("push", -1, task.bi);
                let t_push = std::time::Instant::now();
                task.phase[0] += t_push.duration_since(t0).as_secs_f64();
                // Momentum push (the lane tiling is bitwise identical to
                // the scalar pusher, so no `optimized` split is needed).
                with_lanes!(
                    lane_width,
                    W,
                    Lanes::<W>::push_momentum(
                        pusher,
                        &mut buf.ux[..n],
                        &mut buf.uy[..n],
                        &mut buf.uz[..n],
                        &sc.ex[..n],
                        &sc.ey[..n],
                        &sc.ez[..n],
                        &sc.bx[..n],
                        &sc.by[..n],
                        &sc.bz[..n],
                        qmdt2,
                    )
                );
                // Save old positions, compute vy at the half step, push x.
                sc.x0[..n].copy_from_slice(&buf.x[..n]);
                sc.y0[..n].copy_from_slice(&buf.y[..n]);
                sc.z0[..n].copy_from_slice(&buf.z[..n]);
                for p in 0..n {
                    sc.vy[p] = buf.uy[p] / gamma_of_u(buf.ux[p], buf.uy[p], buf.uz[p]);
                }
                match dim {
                    Dim::Three => push_position(
                        &mut buf.x[..n],
                        &mut buf.y[..n],
                        &mut buf.z[..n],
                        &buf.ux[..n],
                        &buf.uy[..n],
                        &buf.uz[..n],
                        dt,
                    ),
                    Dim::Two => push_position2(
                        &mut buf.x[..n],
                        &mut buf.z[..n],
                        &buf.ux[..n],
                        &buf.uy[..n],
                        &buf.uz[..n],
                        dt,
                    ),
                }
                drop(push_span);
                let deposit_span = mrpic_trace::span!("deposit", -1, task.bi);
                let t_dep = std::time::Instant::now();
                task.phase[1] += t_dep.duration_since(t_push).as_secs_f64();
                // Deposit: [0..c_fine) to the per-box fine buffer (reduced
                // in box order after the loop), rest to this box's J fabs.
                if c_fine > 0 {
                    let mr = mr.expect("partitioned => MR present");
                    let fine_geom = mr.fine.geom.kernel_geom();
                    task.fine_j.used = true;
                    let fine_fabs = [
                        mr.fine.j[0].fab(0),
                        mr.fine.j[1].fab(0),
                        mr.fine.j[2].fab(0),
                    ];
                    for (c, fab) in fine_fabs.iter().enumerate() {
                        let len = fab.comp(0).len();
                        task.fine_j.j[c].resize(len, 0.0);
                        task.fine_j.j[c].fill(0.0);
                    }
                    let [fjx, fjy, fjz] = &mut task.fine_j.j;
                    let mut jv = JViews {
                        jx: view_over(fine_fabs[0], fjx),
                        jy: view_over(fine_fabs[1], fjy),
                        jz: view_over(fine_fabs[2], fjz),
                    };
                    Self::deposit_slice(
                        dim, order, optimized, lane_width, buf, sc, 0, c_fine, sp_charge, dt,
                        &fine_geom, &mut jv,
                    );
                }
                if c_fine < n {
                    let mut jv = JViews {
                        jx: view_of_fab_mut(task.jx),
                        jy: view_of_fab_mut(task.jy),
                        jz: view_of_fab_mut(task.jz),
                    };
                    Self::deposit_slice(
                        dim, order, optimized, lane_width, buf, sc, c_fine, n, sp_charge, dt,
                        &geom, &mut jv,
                    );
                }
                drop(deposit_span);
                task.phase[2] += t_dep.elapsed().as_secs_f64();
                let box_ns = t0.elapsed().as_nanos() as u64;
                *task.seconds += box_ns as f64 * 1e-9;
                if mrpic_trace::enabled() {
                    box_kernel_hist().record(box_ns);
                }
            },
        );
        drop(tasks);
        // Deterministic ordered reduction of the fine-patch deposition:
        // ascending box index, independent of which thread ran which box.
        if let Some(mr) = self.mr.as_mut() {
            for slot in self.fine_j_pool.iter_mut() {
                if !slot.used {
                    continue;
                }
                slot.used = false;
                for c in 0..3 {
                    let dst = mr.fine.j[c].fab_mut(0).comp_mut(0);
                    for (d, s) in dst.iter_mut().zip(slot.j[c].iter()) {
                        *d += *s;
                    }
                }
            }
        }
        pushed
    }

    /// Mixed-precision (`f32_particles`) variant of `advance_species`.
    ///
    /// Per box: the six guarded field windows and the particle
    /// attributes are cast to `f32` once, gather / momentum push /
    /// Esirkepov deposition run in single precision through the same
    /// lane-blocked kernels, and the deposited currents are accumulated
    /// back into the `f64` fabs. Positions are pushed in `f64` (only
    /// cast for the kernels), so long moving-window runs keep full cell
    /// resolution. Mesh refinement is rejected at build/config time.
    fn advance_species_f32(&mut self, si: usize, dt: f64) -> usize {
        debug_assert!(self.mr.is_none(), "MR is rejected in f32 mode");
        let dim = self.dim;
        let order = self.order;
        let sp_charge = self.species[si].charge;
        let sp_mass = self.species[si].mass;
        let pusher = self.species[si].pusher;
        let qmdt2 = (sp_charge * dt / (2.0 * sp_mass)) as f32;
        let geom = self.fs.geom.kernel_geom();
        let optimized = self.use_optimized_kernels;
        let lane_width = self.lane_width;
        let nboxes = self.fs.nfabs();
        self.fine_j_pool.resize_with(nboxes, FineJBuf::default);
        let FieldSet { e, b, j, .. } = &mut self.fs;
        let (e, b) = (&*e, &*b);
        let [jx_arr, jy_arr, jz_arr] = j;
        let mut pushed = 0usize;
        let mut tasks: Vec<BoxTask<'_>> = Vec::with_capacity(nboxes);
        {
            let mut jxs = jx_arr.fabs_mut().iter_mut();
            let mut jys = jy_arr.fabs_mut().iter_mut();
            let mut jzs = jz_arr.fabs_mut().iter_mut();
            let mut fine = self.fine_j_pool.iter_mut();
            let mut secs = self.box_seconds.iter_mut();
            let mut phs = self.box_phase.iter_mut();
            for (bi, buf) in self.parts[si].bufs.iter_mut().enumerate() {
                let jx = jxs.next().expect("J layout matches particle boxes");
                let jy = jys.next().expect("J layout matches particle boxes");
                let jz = jzs.next().expect("J layout matches particle boxes");
                let fine_j = fine.next().expect("pool sized to nboxes");
                let seconds = secs.next().expect("box_seconds sized to nboxes");
                let phase = phs.next().expect("box_phase sized to nboxes");
                if buf.is_empty() {
                    continue;
                }
                pushed += buf.len();
                tasks.push(BoxTask {
                    bi,
                    buf,
                    jx,
                    jy,
                    jz,
                    fine_j,
                    seconds,
                    phase,
                });
            }
        }
        let pool = &self.scratch32_pool;
        tasks.par_iter_mut().for_each_init(
            || Scratch32Guard::checkout(pool),
            |guard, task| {
                let _box_span = mrpic_trace::span!("box", -1, task.bi);
                let gather_span = mrpic_trace::span!("gather", -1, task.bi);
                let t0 = std::time::Instant::now();
                let Scratch32 {
                    fld,
                    em,
                    x0,
                    y0,
                    z0,
                    x1,
                    y1,
                    z1,
                    ux,
                    uy,
                    uz,
                    w,
                    vy,
                    j,
                } = &mut guard.sc;
                let buf = &mut *task.buf;
                let n = buf.len();
                // Stage particle attributes and the box's field windows.
                Scratch32::cast(x0, &buf.x[..n]);
                Scratch32::cast(y0, &buf.y[..n]);
                Scratch32::cast(z0, &buf.z[..n]);
                Scratch32::cast(ux, &buf.ux[..n]);
                Scratch32::cast(uy, &buf.uy[..n]);
                Scratch32::cast(uz, &buf.uz[..n]);
                Scratch32::cast(w, &buf.w[..n]);
                for v in em.iter_mut() {
                    v.resize(n.max(v.len()), 0.0);
                }
                vy.resize(n.max(vy.len()), 0.0);
                let bi = task.bi;
                let [f0, f1, f2, f3, f4, f5] = fld;
                let views = EmViews {
                    ex: stage_view(f0, &fab_view(&e[0], bi)),
                    ey: stage_view(f1, &fab_view(&e[1], bi)),
                    ez: stage_view(f2, &fab_view(&e[2], bi)),
                    bx: stage_view(f3, &fab_view(&b[0], bi)),
                    by: stage_view(f4, &fab_view(&b[1], bi)),
                    bz: stage_view(f5, &fab_view(&b[2], bi)),
                };
                let [g0, g1, g2, g3, g4, g5] = em;
                let mut out = EmOut {
                    ex: &mut g0[..n],
                    ey: &mut g1[..n],
                    ez: &mut g2[..n],
                    bx: &mut g3[..n],
                    by: &mut g4[..n],
                    bz: &mut g5[..n],
                };
                with_shape!(
                    order,
                    S,
                    match dim {
                        Dim::Three if optimized => with_lanes!(
                            lane_width,
                            W,
                            Lanes::<W>::gather3::<S, f32>(x0, y0, z0, &geom, &views, &mut out)
                        ),
                        Dim::Three => gather3::<S, f32>(x0, y0, z0, &geom, &views, &mut out),
                        Dim::Two if optimized => with_lanes!(
                            lane_width,
                            W,
                            Lanes::<W>::gather2::<S, f32>(x0, z0, &geom, &views, &mut out)
                        ),
                        Dim::Two => gather2::<S, f32>(x0, z0, &geom, &views, &mut out),
                    }
                );
                drop(gather_span);
                let push_span = mrpic_trace::span!("push", -1, task.bi);
                let t_push = std::time::Instant::now();
                task.phase[0] += t_push.duration_since(t0).as_secs_f64();
                with_lanes!(
                    lane_width,
                    W,
                    Lanes::<W>::push_momentum(
                        pusher,
                        &mut ux[..n],
                        &mut uy[..n],
                        &mut uz[..n],
                        &g0[..n],
                        &g1[..n],
                        &g2[..n],
                        &g3[..n],
                        &g4[..n],
                        &g5[..n],
                        qmdt2,
                    )
                );
                // Momenta are owned by the f32 path; positions stay f64.
                for p in 0..n {
                    buf.ux[p] = ux[p] as f64;
                    buf.uy[p] = uy[p] as f64;
                    buf.uz[p] = uz[p] as f64;
                    vy[p] = uy[p] / gamma_of_u(ux[p], uy[p], uz[p]);
                }
                match dim {
                    Dim::Three => push_position(
                        &mut buf.x[..n],
                        &mut buf.y[..n],
                        &mut buf.z[..n],
                        &buf.ux[..n],
                        &buf.uy[..n],
                        &buf.uz[..n],
                        dt,
                    ),
                    Dim::Two => push_position2(
                        &mut buf.x[..n],
                        &mut buf.z[..n],
                        &buf.ux[..n],
                        &buf.uy[..n],
                        &buf.uz[..n],
                        dt,
                    ),
                }
                Scratch32::cast(x1, &buf.x[..n]);
                Scratch32::cast(y1, &buf.y[..n]);
                Scratch32::cast(z1, &buf.z[..n]);
                drop(push_span);
                let deposit_span = mrpic_trace::span!("deposit", -1, task.bi);
                let t_dep = std::time::Instant::now();
                task.phase[1] += t_dep.duration_since(t_push).as_secs_f64();
                // Deposit into f32 tiles with the fabs' layout, then
                // accumulate into the f64 currents.
                let jx64 = view_of_fab_mut(task.jx);
                let jy64 = view_of_fab_mut(task.jy);
                let jz64 = view_of_fab_mut(task.jz);
                let [tjx, tjy, tjz] = j;
                for (tile, len) in [
                    (&mut *tjx, jx64.data.len()),
                    (&mut *tjy, jy64.data.len()),
                    (&mut *tjz, jz64.data.len()),
                ] {
                    tile.resize(len, 0.0);
                    tile.fill(0.0);
                }
                {
                    let mut jv = JViews {
                        jx: FieldViewMut {
                            data: &mut tjx[..],
                            lo: jx64.lo,
                            nx: jx64.nx,
                            nxy: jx64.nxy,
                            half: jx64.half,
                        },
                        jy: FieldViewMut {
                            data: &mut tjy[..],
                            lo: jy64.lo,
                            nx: jy64.nx,
                            nxy: jy64.nxy,
                            half: jy64.half,
                        },
                        jz: FieldViewMut {
                            data: &mut tjz[..],
                            lo: jz64.lo,
                            nx: jz64.nx,
                            nxy: jz64.nxy,
                            half: jz64.half,
                        },
                    };
                    let (qf, dtf) = (sp_charge as f32, dt as f32);
                    with_shape!(
                        order,
                        S,
                        match dim {
                            Dim::Three if optimized => with_lanes!(
                                lane_width,
                                W,
                                Lanes::<W>::esirkepov3::<S, f32>(
                                    x0, y0, z0, x1, y1, z1, w, qf, dtf, &geom, &mut jv,
                                )
                            ),
                            Dim::Three => esirkepov3::<S, f32>(
                                x0, y0, z0, x1, y1, z1, w, qf, dtf, &geom, &mut jv,
                            ),
                            Dim::Two if optimized => with_lanes!(
                                lane_width,
                                W,
                                Lanes::<W>::esirkepov2::<S, f32>(
                                    x0,
                                    z0,
                                    x1,
                                    z1,
                                    &vy[..n],
                                    w,
                                    qf,
                                    dtf,
                                    &geom,
                                    &mut jv,
                                )
                            ),
                            Dim::Two => esirkepov2::<S, f32>(
                                x0,
                                z0,
                                x1,
                                z1,
                                &vy[..n],
                                w,
                                qf,
                                dtf,
                                &geom,
                                &mut jv,
                            ),
                        }
                    );
                }
                for (dst, tile) in [(jx64, &*tjx), (jy64, &*tjy), (jz64, &*tjz)] {
                    for (d, s) in dst.data.iter_mut().zip(tile.iter()) {
                        *d += *s as f64;
                    }
                }
                drop(deposit_span);
                task.phase[2] += t_dep.elapsed().as_secs_f64();
                let box_ns = t0.elapsed().as_nanos() as u64;
                *task.seconds += box_ns as f64 * 1e-9;
                if mrpic_trace::enabled() {
                    box_kernel_hist().record(box_ns);
                }
            },
        );
        pushed
    }

    #[allow(clippy::too_many_arguments)]
    fn deposit_slice(
        dim: Dim,
        order: ShapeOrder,
        optimized: bool,
        lane_width: usize,
        buf: &crate::particles::ParticleBuf,
        sc: &Scratch,
        lo: usize,
        hi: usize,
        charge: f64,
        dt: f64,
        geom: &mrpic_kernels::view::Geom,
        jv: &mut JViews<'_, f64>,
    ) {
        with_shape!(
            order,
            S,
            match dim {
                Dim::Three if optimized => with_lanes!(
                    lane_width,
                    W,
                    Lanes::<W>::esirkepov3::<S, f64>(
                        &sc.x0[lo..hi],
                        &sc.y0[lo..hi],
                        &sc.z0[lo..hi],
                        &buf.x[lo..hi],
                        &buf.y[lo..hi],
                        &buf.z[lo..hi],
                        &buf.w[lo..hi],
                        charge,
                        dt,
                        geom,
                        jv,
                    )
                ),
                Dim::Three => esirkepov3::<S, f64>(
                    &sc.x0[lo..hi],
                    &sc.y0[lo..hi],
                    &sc.z0[lo..hi],
                    &buf.x[lo..hi],
                    &buf.y[lo..hi],
                    &buf.z[lo..hi],
                    &buf.w[lo..hi],
                    charge,
                    dt,
                    geom,
                    jv,
                ),
                Dim::Two if optimized => with_lanes!(
                    lane_width,
                    W,
                    Lanes::<W>::esirkepov2::<S, f64>(
                        &sc.x0[lo..hi],
                        &sc.z0[lo..hi],
                        &buf.x[lo..hi],
                        &buf.z[lo..hi],
                        &sc.vy[lo..hi],
                        &buf.w[lo..hi],
                        charge,
                        dt,
                        geom,
                        jv,
                    )
                ),
                Dim::Two => esirkepov2::<S, f64>(
                    &sc.x0[lo..hi],
                    &sc.z0[lo..hi],
                    &buf.x[lo..hi],
                    &buf.z[lo..hi],
                    &sc.vy[lo..hi],
                    &buf.w[lo..hi],
                    charge,
                    dt,
                    geom,
                    jv,
                ),
            }
        );
    }

    /// Full leapfrog field advance with PML interface exchanges. Guard
    /// fills of E and B go through `comm`; the Yee updates and the
    /// (rank-colocated, paper §V-C) PML exchanges stay local.
    fn advance_fields(&mut self, dt: f64, comm: &mut dyn crate::exchange::StepComm) {
        fn fill3(
            comm: &mut dyn crate::exchange::StepComm,
            arrays: &mut [FabArray; 3],
            period: &Periodicity,
        ) {
            let [a0, a1, a2] = arrays;
            comm.fill_group(&mut [a0, a1, a2], period);
        }
        let period = self.fs.period;
        let fs = &mut self.fs;
        fill3(comm, &mut fs.e, &period);
        if let Some(pml) = &mut self.pml {
            pml.exchange_e(fs);
        }
        yee::advance_b(fs, 0.5 * dt);
        if let Some(pml) = &mut self.pml {
            pml.advance_b(0.5 * dt);
        }
        fill3(comm, &mut fs.b, &period);
        if let Some(pml) = &mut self.pml {
            pml.exchange_b(fs);
        }
        yee::advance_e(fs, dt);
        if let Some(pml) = &mut self.pml {
            pml.advance_e(dt);
        }
        fill3(comm, &mut fs.e, &period);
        if let Some(pml) = &mut self.pml {
            pml.exchange_e(fs);
        }
        yee::advance_b(fs, 0.5 * dt);
        if let Some(pml) = &mut self.pml {
            pml.advance_b(0.5 * dt);
        }
        fill3(comm, &mut fs.b, &period);
        if let Some(pml) = &mut self.pml {
            pml.exchange_b(fs);
        }
    }

    /// Shift the window by one cell along +x.
    fn shift_window_once(&mut self, inject_front: bool) {
        let shift = IntVect::new(1, 0, 0);
        self.fs.shift_window(shift);
        if let Some(pml) = &mut self.pml {
            pml.shift_window(shift);
        }
        if let Some(mr) = &mut self.mr {
            mr.shift_window(shift);
        }
        self.fs.geom.x0[0] += self.fs.geom.dx[0];
        // Drop particles that fell off the trailing edge, re-own the rest.
        let geom = self.fs.geom;
        let period = self.fs.period;
        let cut = geom.node(0, self.fs.domain().lo.x);
        for pc in &mut self.parts {
            pc.drop_behind(cut);
            pc.redistribute(self.fs.boxarray(), &geom, &period);
        }
        // Inject fresh plasma in the newly exposed leading strip.
        if inject_front {
            let dom = self.fs.domain();
            let strip = IndexBox::new(IntVect::new(dom.hi.x - 1, dom.lo.y, dom.lo.z), dom.hi);
            for (si, sp) in self.species.iter().enumerate() {
                inject(
                    sp,
                    self.dim,
                    &geom,
                    self.fs.boxarray(),
                    &strip,
                    &mut self.parts[si],
                    self.seed ^ (si as u64) ^ self.istep.wrapping_mul(0x9E3779B97F4A7C15),
                );
            }
        }
    }

    /// Per-box particle-phase seconds measured during the last step
    /// (empty before the first step). Distributed drivers aggregate
    /// these by owner for per-rank load records.
    pub fn box_seconds(&self) -> &[f64] {
        &self.box_seconds
    }

    /// Field + particle energy (diagnostics).
    pub fn total_energy(&self) -> (f64, f64) {
        let fe = mrpic_field::energy::field_energy(&self.fs);
        let mut ke = 0.0;
        for (si, pc) in self.parts.iter().enumerate() {
            let m = self.species[si].mass;
            for buf in &pc.bufs {
                for i in 0..buf.len() {
                    ke +=
                        buf.w[i] * crate::diag::kinetic_energy(m, buf.ux[i], buf.uy[i], buf.uz[i]);
                }
            }
        }
        (fe, ke)
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Drop every cached exchange plan (parent grids, PML shells, MR
    /// patch). Required whenever field data or ownership changed under
    /// the caches — a checkpoint restore rewrote state in place, or a
    /// crash recovery shrank the rank set and rebuilt the distribution
    /// mapping.
    pub fn invalidate_all_plans(&mut self) {
        self.fs.invalidate_plans();
        if let Some(pml) = &mut self.pml {
            pml.invalidate_plans();
        }
        if let Some(mr) = &mut self.mr {
            mr.invalidate_plans();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use mrpic_kernels::constants::{plasma_frequency, C, EPS0, Q_E};

    /// Cold plasma oscillation: displace all electrons slightly and watch
    /// the current oscillate at the plasma frequency.
    #[test]
    fn plasma_oscillation_frequency() {
        let n0 = 1.0e25;
        let wp = plasma_frequency(n0);
        let dx = 0.5e-6;
        let mut sim = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(32, 1, 8), [dx; 3], [0.0; 3])
            .periodic([true, true, true])
            .order(ShapeOrder::Quadratic)
            .cfl(0.5)
            .add_species(
                Species::electrons("e", Profile::Uniform { n0 }, [2, 1, 2])
                    .with_drift([1.0e6, 0.0, 0.0]),
            )
            .build();
        // Track Ex at a probe: should oscillate at wp.
        let mut exs: Vec<f64> = Vec::new();
        let steps = (2.5 * 2.0 * std::f64::consts::PI / wp / sim.dt) as usize;
        for _ in 0..steps {
            sim.step();
            exs.push(sim.fs.e[0].at(0, IntVect::new(16, 0, 4)).unwrap());
        }
        // The oscillation is (1 - cos)-like: detect upward crossings of
        // the mean value.
        let mean: f64 = exs.iter().sum::<f64>() / exs.len() as f64;
        let mut crossings = Vec::new();
        for i in 1..exs.len() {
            if exs[i - 1] < mean && exs[i] >= mean {
                crossings.push(i as f64);
            }
        }
        assert!(crossings.len() >= 2, "no oscillation seen");
        let period_steps =
            (crossings.last().unwrap() - crossings[0]) / (crossings.len() - 1) as f64;
        let wp_meas = 2.0 * std::f64::consts::PI / (period_steps * sim.dt);
        assert!(
            (wp_meas / wp - 1.0).abs() < 0.05,
            "measured wp {wp_meas:e} vs {wp:e}"
        );
    }

    /// A uniform drifting plasma is force-free (current is uniform): the
    /// total energy must stay nearly constant.
    #[test]
    fn uniform_plasma_energy_conservation() {
        let mut sim = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(16, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .order(ShapeOrder::Cubic)
            .add_species(
                Species::electrons("e", Profile::Uniform { n0: 1.0e24 }, [2, 1, 2])
                    .with_thermal([1.0e7; 3]),
            )
            .build();
        let (fe0, ke0) = sim.total_energy();
        sim.run(100);
        let (fe1, ke1) = sim.total_energy();
        let tot0 = fe0 + ke0;
        let tot1 = fe1 + ke1;
        assert!(
            (tot1 - tot0).abs() < 0.02 * tot0,
            "energy drift {tot0:e} -> {tot1:e}"
        );
    }

    /// Gauss's law is preserved by the Esirkepov + Yee combination:
    /// div E - rho/eps0 stays at its initial value to near machine
    /// precision.
    #[test]
    fn gauss_law_preservation() {
        let mut sim = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(16, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .order(ShapeOrder::Quadratic)
            .add_species(
                Species::electrons("e", Profile::Uniform { n0: 1.0e24 }, [2, 1, 1])
                    .with_thermal([3.0e7, 3.0e7, 3.0e7]),
            )
            .seed(5)
            .build();
        let gauss_residual = |sim: &Simulation| -> f64 {
            // rho from particles with the same quadratic shape.
            let dom = sim.fs.domain();
            let geom = sim.fs.geom;
            let n = dom.size();
            // Margin absorbs deposition clouds of the periodic images
            // (each image is a full domain length away).
            let m = n.x.max(n.z) + 5;
            let (mx, mz) = (n.x + 1 + 2 * m, n.z + 1 + 2 * m);
            let npts = (mx * mz) as usize;
            let mut rho = vec![0.0; npts];
            {
                let mut view = mrpic_kernels::view::FieldViewMut {
                    data: &mut rho,
                    lo: [-m, 0, -m],
                    nx: mx,
                    // Single y plane: the z stride equals the x row.
                    nxy: mx,
                    half: [false; 3],
                };
                // Wrap periodic images by depositing each particle at
                // its wrapped plus shifted copies near the edges.
                let kg = geom.kernel_geom();
                for buf in &sim.parts[0].bufs {
                    for img_x in [-1.0, 0.0, 1.0] {
                        for img_z in [-1.0, 0.0, 1.0] {
                            let lx = n.x as f64 * geom.dx[0];
                            let lz = n.z as f64 * geom.dx[2];
                            let xs: Vec<f64> = buf.x.iter().map(|v| v + img_x * lx).collect();
                            let zs: Vec<f64> = buf.z.iter().map(|v| v + img_z * lz).collect();
                            mrpic_kernels::deposit::deposit_rho2::<Quadratic, f64>(
                                &xs, &zs, &buf.w, -Q_E, &kg, &mut view,
                            );
                        }
                    }
                }
            }
            // div E at interior nodes minus rho/eps0 (2-D: x and z).
            let mut max_resid = 0.0f64;
            for k in 1..n.z {
                for i in 1..n.x {
                    let p = IntVect::new(i, 0, k);
                    let dive = (sim.fs.e[0].at(0, p).unwrap()
                        - sim.fs.e[0].at(0, IntVect::new(i - 1, 0, k)).unwrap())
                        / geom.dx[0]
                        + (sim.fs.e[2].at(0, p).unwrap()
                            - sim.fs.e[2].at(0, IntVect::new(i, 0, k - 1)).unwrap())
                            / geom.dx[2];
                    let r = rho[((k + m) * mx + (i + m)) as usize];
                    max_resid = max_resid.max((dive - r / EPS0).abs());
                }
            }
            max_resid
        };
        let r0 = gauss_residual(&sim);
        sim.run(25);
        let r1 = gauss_residual(&sim);
        // Scale: typical rho/eps0 magnitude.
        let scale = 1.0e24 * Q_E / EPS0 * 1.0e-6; // n q dx / eps0 ~ div E scale
        assert!(
            (r1 - r0).abs() < 1e-6 * scale,
            "Gauss residual drifted: {r0:e} -> {r1:e} (scale {scale:e})"
        );
    }

    /// The moving window keeps a vacuum laser pulse inside the domain.
    #[test]
    fn moving_window_follows_pulse() {
        let dx = 0.1e-6;
        // The window must start only after the pulse has detached from
        // the (lab-fixed) antenna: a window moving at c from t = 0 would
        // outrun light emitted at a fixed plane.
        let mut sim = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(128, 1, 8), [dx; 3], [0.0; 3])
            .periodic([false, false, true])
            .pml(8)
            .cfl(0.7)
            .moving_window(18.0e-15)
            .add_laser(crate::laser::antenna_for_a0(
                0.5,
                0.8e-6,
                5.0e-15,
                16.0 * dx,
                0.0,
                f64::INFINITY,
            ))
            .build();
        sim.lasers[0].t_peak = 8.0e-15;
        let steps = 400;
        for _ in 0..steps {
            sim.step();
        }
        // After many shifts the pulse must still be in the window with
        // its peak amplitude roughly preserved.
        assert!(sim.fs.geom.x0[0] > 10.0 * dx, "window never moved");
        let peak = sim.fs.e[1].max_abs(0);
        let e0 = sim.lasers[0].e0;
        assert!(
            peak > 0.6 * e0,
            "pulse lost by the window: {peak:e} vs {e0:e}"
        );
    }

    /// Relativistic beam in vacuum: ballistic motion across the domain.
    #[test]
    fn ballistic_beam_in_vacuum() {
        let mut sim = SimulationBuilder::new(Dim::Three)
            .domain(IntVect::new(24, 8, 8), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .order(ShapeOrder::Linear)
            .build();
        // One macroparticle, gamma ~ 10 along x.
        let g: f64 = 10.0;
        let u = C * (g * g - 1.0).sqrt();
        sim.parts = vec![ParticleContainer::new(sim.fs.nfabs())];
        sim.species = vec![Species::electrons(
            "beam",
            Profile::Uniform { n0: 0.0 },
            [1, 1, 1],
        )];
        sim.parts[0].bufs[0].push(2.5e-6, 4.5e-6, 4.5e-6, u, 0.0, 0.0, 1.0);
        let x_start = 2.5e-6;
        let steps = 40;
        for _ in 0..steps {
            sim.step();
        }
        let v = u / g;
        let expect = x_start + v * sim.dt * steps as f64;
        let l = 24.0e-6;
        let expect_wrapped = expect - l * ((expect / l).floor());
        // Find the particle.
        let mut found = None;
        for buf in &sim.parts[0].bufs {
            if buf.len() == 1 {
                found = Some(buf.x[0]);
            }
        }
        let x = found.expect("particle lost");
        assert!(
            (x - expect_wrapped).abs() < 1e-2 * l,
            "x = {x:e}, expect {expect_wrapped:e}"
        );
        assert_eq!(sim.total_particles(), 1);
    }

    #[test]
    fn step_stats_populated() {
        let mut sim = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(16, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .add_species(Species::electrons(
                "e",
                Profile::Uniform { n0: 1.0e24 },
                [1, 1, 1],
            ))
            .build();
        let st = sim.step();
        assert_eq!(st.pushed, 16 * 16);
        assert!(st.particle_seconds > 0.0);
        assert!(st.field_seconds > 0.0);
        assert_eq!(sim.istep, 1);
    }
}

#[cfg(test)]
mod optimized_kernel_tests {
    use super::*;
    use crate::profile::Profile;
    use crate::species::Species;

    /// The optimized kernel path must produce (near-)identical physics.
    #[test]
    fn optimized_kernels_match_baseline_run() {
        let build = |optimized: bool| {
            SimulationBuilder::new(Dim::Two)
                .domain(IntVect::new(24, 1, 16), [0.5e-6; 3], [0.0; 3])
                .periodic([true, true, true])
                .order(ShapeOrder::Quadratic)
                .cfl(0.5)
                .seed(3)
                .optimized_kernels(optimized)
                .add_species(
                    Species::electrons("e", Profile::Uniform { n0: 1.0e25 }, [2, 1, 2])
                        .with_drift([2.0e6, 0.0, 1.0e6]),
                )
                .build()
        };
        let mut a = build(false);
        let mut b = build(true);
        for _ in 0..40 {
            a.step();
            b.step();
        }
        let probe = IntVect::new(12, 0, 8);
        let (va, vb) = (
            a.fs.e[0].at(0, probe).unwrap(),
            b.fs.e[0].at(0, probe).unwrap(),
        );
        let scale = a.fs.e[0].max_abs(0).max(1e-30);
        assert!(
            (va - vb).abs() < 1e-9 * scale,
            "optimized run diverged: {va:e} vs {vb:e}"
        );
    }
}
