//! Checkpoint / restart of the full simulation state.
//!
//! Long campaigns on shared machines (the paper's science runs took many
//! wall-clock hours across reservations) need restart capability. A
//! checkpoint persists the run clock, the particle phase space, the field
//! data of every grid (parent, PML split fields, MR patch fine/coarse/aux
//! grids), and the moving-window state, so a restored run continues
//! bitwise identically to the uninterrupted one. Restoring also drops all
//! cached exchange plans: the restore overwrites field data in place, and
//! stale plans built against the pre-restore window position would move
//! the wrong cells.

use crate::particles::{ParticleBuf, ParticleContainer};
use crate::sim::MovingWindow;
use mrpic_amr::FabArray;
use mrpic_field::fieldset::FieldSet;
use mrpic_field::pml::Pml;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Why a checkpoint could not be applied to a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

fn err(msg: String) -> RestoreError {
    RestoreError(msg)
}

/// Raw data of one [`FabArray`]: per box, all components including guards.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabArraySnap {
    pub data: Vec<Vec<f64>>,
}

impl FabArraySnap {
    fn capture(fa: &FabArray) -> Self {
        Self {
            data: fa.fabs().iter().map(|f| f.raw().to_vec()).collect(),
        }
    }

    fn restore(&self, fa: &mut FabArray, what: &str) -> Result<(), RestoreError> {
        if self.data.len() != fa.fabs().len() {
            return Err(err(format!(
                "{what}: checkpoint has {} boxes, simulation has {} \
                 (box layout must match the capture-time run)",
                self.data.len(),
                fa.fabs().len()
            )));
        }
        for (bi, (src, fab)) in self.data.iter().zip(fa.fabs_mut()).enumerate() {
            let dst = fab.raw_mut();
            if src.len() != dst.len() {
                return Err(err(format!(
                    "{what}, box {bi}: checkpoint fab has {} values, \
                     simulation fab has {} (grid shape must match)",
                    src.len(),
                    dst.len()
                )));
            }
            dst.copy_from_slice(src);
        }
        Ok(())
    }
}

/// Field data + origin of one grid level (parent, MR fine/coarse/aux).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FieldSetSnap {
    pub x0: [f64; 3],
    pub e: [FabArraySnap; 3],
    pub b: [FabArraySnap; 3],
    pub j: [FabArraySnap; 3],
}

impl FieldSetSnap {
    fn capture(fs: &FieldSet) -> Self {
        let snap3 = |a: &[FabArray; 3]| {
            [
                FabArraySnap::capture(&a[0]),
                FabArraySnap::capture(&a[1]),
                FabArraySnap::capture(&a[2]),
            ]
        };
        Self {
            x0: fs.geom.x0,
            e: snap3(&fs.e),
            b: snap3(&fs.b),
            j: snap3(&fs.j),
        }
    }

    fn restore(&self, fs: &mut FieldSet, what: &str) -> Result<(), RestoreError> {
        for c in 0..3 {
            self.e[c].restore(&mut fs.e[c], &format!("{what} E[{c}]"))?;
            self.b[c].restore(&mut fs.b[c], &format!("{what} B[{c}]"))?;
            self.j[c].restore(&mut fs.j[c], &format!("{what} J[{c}]"))?;
        }
        fs.geom.x0 = self.x0;
        Ok(())
    }
}

/// Split-field data of one PML shell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PmlSnap {
    pub e: [FabArraySnap; 3],
    pub b: [FabArraySnap; 3],
}

impl PmlSnap {
    fn capture(pml: &Pml) -> Self {
        let snap3 = |a: &[FabArray; 3]| {
            [
                FabArraySnap::capture(&a[0]),
                FabArraySnap::capture(&a[1]),
                FabArraySnap::capture(&a[2]),
            ]
        };
        Self {
            e: snap3(pml.esplit()),
            b: snap3(pml.bsplit()),
        }
    }

    fn restore(&self, pml: &mut Pml, what: &str) -> Result<(), RestoreError> {
        for c in 0..3 {
            self.e[c].restore(&mut pml.esplit_mut()[c], &format!("{what} Esplit[{c}]"))?;
            self.b[c].restore(&mut pml.bsplit_mut()[c], &format!("{what} Bsplit[{c}]"))?;
        }
        Ok(())
    }
}

/// State of the mesh-refinement patch: all three grid levels + PMLs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MrSnap {
    pub fine: FieldSetSnap,
    pub coarse: FieldSetSnap,
    pub aux: FieldSetSnap,
    pub fine_pml: PmlSnap,
    pub coarse_pml: PmlSnap,
}

/// Everything needed to resume a run bitwise identically.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    #[serde(default)]
    pub version: u32,
    pub time: f64,
    pub istep: u64,
    pub x0: [f64; 3],
    #[serde(default)]
    pub window: Option<MovingWindow>,
    pub fields: FieldSetSnap,
    #[serde(default)]
    pub pml: Option<PmlSnap>,
    #[serde(default)]
    pub mr: Option<MrSnap>,
    /// Per species, per box.
    pub species: Vec<Vec<ParticleBuf>>,
}

impl Checkpoint {
    pub fn capture(sim: &crate::sim::Simulation) -> Self {
        Self {
            version: 2,
            time: sim.time,
            istep: sim.istep,
            x0: sim.fs.geom.x0,
            window: sim.window,
            fields: FieldSetSnap::capture(&sim.fs),
            pml: sim.pml.as_ref().map(PmlSnap::capture),
            mr: sim.mr.as_ref().map(|mr| MrSnap {
                fine: FieldSetSnap::capture(&mr.fine),
                coarse: FieldSetSnap::capture(&mr.coarse),
                aux: FieldSetSnap::capture(&mr.aux),
                fine_pml: PmlSnap::capture(&mr.fine_pml),
                coarse_pml: PmlSnap::capture(&mr.coarse_pml),
            }),
            species: sim.parts.iter().map(|pc| pc.bufs.clone()).collect(),
        }
    }

    /// Restore the full state into a compatible simulation: same domain
    /// and box layout, same species set, and (when captured with one) the
    /// same PML / MR patch configuration. Drops all cached exchange plans
    /// afterwards — the field data and window position changed under them.
    pub fn restore(&self, sim: &mut crate::sim::Simulation) -> Result<(), RestoreError> {
        if self.version > 2 {
            return Err(err(format!(
                "checkpoint version {} is newer than this build understands (max 2)",
                self.version
            )));
        }
        if self.species.len() != sim.parts.len() {
            return Err(err(format!(
                "checkpoint has {} species, simulation has {} \
                 (build the target with the same species set)",
                self.species.len(),
                sim.parts.len()
            )));
        }
        for (si, bufs) in self.species.iter().enumerate() {
            if bufs.len() != sim.parts[si].bufs.len() {
                return Err(err(format!(
                    "species {si}: checkpoint has {} particle boxes, \
                     simulation has {} (box layout must match)",
                    bufs.len(),
                    sim.parts[si].bufs.len()
                )));
            }
        }
        match (&self.pml, &mut sim.pml) {
            (Some(snap), Some(pml)) => snap.restore(pml, "PML")?,
            (None, None) => {}
            (Some(_), None) => {
                return Err(err(
                    "checkpoint carries PML state but the simulation has no PML \
                     (build the target with the same .pml(npml))"
                        .into(),
                ))
            }
            (None, Some(_)) => {
                return Err(err(
                    "simulation has a PML but the checkpoint carries none".into()
                ))
            }
        }
        match (&self.mr, &mut sim.mr) {
            (Some(snap), Some(mr)) => {
                snap.fine.restore(&mut mr.fine, "MR fine")?;
                snap.coarse.restore(&mut mr.coarse, "MR coarse")?;
                snap.aux.restore(&mut mr.aux, "MR aux")?;
                snap.fine_pml.restore(&mut mr.fine_pml, "MR fine PML")?;
                snap.coarse_pml
                    .restore(&mut mr.coarse_pml, "MR coarse PML")?;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(err(
                    "checkpoint carries an MR patch but the simulation has none \
                     (attach the same patch with add_mr_patch before restoring)"
                        .into(),
                ))
            }
            (None, Some(_)) => {
                return Err(err(
                    "simulation has an MR patch but the checkpoint carries none".into(),
                ))
            }
        }
        self.fields.restore(&mut sim.fs, "parent")?;
        sim.fs.geom.x0 = self.x0;
        sim.time = self.time;
        sim.istep = self.istep;
        sim.window = self.window;
        for (pc, bufs) in sim.parts.iter_mut().zip(&self.species) {
            pc.bufs = bufs.clone();
        }
        // The restore rewrote field data and (possibly) the window
        // position in place: cached exchange plans are stale.
        sim.invalidate_all_plans();
        Ok(())
    }

    /// Rebuild a simulation from `cfg` and restore this checkpoint into
    /// it, returning the sim plus the config's MR-removal times — the
    /// one-call resume path for parked jobs. Reconciles MR-patch
    /// presence: a checkpoint captured *after* the config's `remove_at`
    /// fired carries no MR state, so the freshly built patch is removed
    /// before restoring (the caller re-derives which removals already
    /// fired from the restored `time`).
    pub fn resume(
        &self,
        cfg: &crate::config::RunConfig,
    ) -> Result<(crate::sim::Simulation, Vec<f64>), String> {
        let (mut sim, removals) = cfg.build()?;
        if self.mr.is_none() && sim.mr.is_some() {
            sim.remove_mr_patch();
        }
        self.restore(&mut sim).map_err(|e| e.to_string())?;
        Ok((sim, removals))
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let bytes = serde_json::to_vec(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, bytes)
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        serde_json::from_slice(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    pub fn total_particles(&self) -> usize {
        self.species
            .iter()
            .map(|s| s.iter().map(|b| b.len()).sum::<usize>())
            .sum()
    }
}

/// Convenience: deep-copy particle container (tests, ablations).
pub fn clone_container(pc: &ParticleContainer) -> ParticleContainer {
    ParticleContainer {
        bufs: pc.bufs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::sim::{ShapeOrder, SimulationBuilder};
    use crate::species::Species;
    use mrpic_amr::IntVect;
    use mrpic_field::fieldset::Dim;

    fn mk_sim() -> crate::sim::Simulation {
        SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(16, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .order(ShapeOrder::Quadratic)
            .add_species(Species::electrons(
                "e",
                Profile::Uniform { n0: 1.0e24 },
                [2, 1, 1],
            ))
            .build()
    }

    #[test]
    fn capture_restore_roundtrip() {
        let mut sim = mk_sim();
        sim.run(5);
        let ck = Checkpoint::capture(&sim);
        assert_eq!(ck.istep, 5);
        assert_eq!(ck.total_particles(), sim.total_particles());
        let mut sim2 = mk_sim();
        ck.restore(&mut sim2).unwrap();
        assert_eq!(sim2.istep, 5);
        assert_eq!(sim2.time, sim.time);
        assert_eq!(sim2.parts[0].bufs[0].x, sim.parts[0].bufs[0].x);
        // Field data restored bitwise, not rebuilt.
        assert_eq!(
            sim2.fs.e[0].fab(0).raw(),
            sim.fs.e[0].fab(0).raw(),
            "E field not restored"
        );
    }

    #[test]
    fn restart_continues_identically() {
        // Capture at step 10, restore into a fresh sim, and step both 10
        // more: every field value and particle must match bitwise.
        let mut a = mk_sim();
        a.run(10);
        let ck = Checkpoint::capture(&a);
        let dir = std::env::temp_dir().join("mrpic_ck_test.json");
        ck.save(&dir).unwrap();
        let back = Checkpoint::load(&dir).unwrap();
        let _ = std::fs::remove_file(&dir);
        assert_eq!(back.istep, 10);
        assert_eq!(back.version, 2);
        assert_eq!(back.total_particles(), ck.total_particles());
        let mut b = mk_sim();
        back.restore(&mut b).unwrap();
        assert_eq!(b.parts[0].bufs[0].ux, a.parts[0].bufs[0].ux);
        a.run(10);
        b.run(10);
        for c in 0..3 {
            for bi in 0..a.fs.nfabs() {
                assert_eq!(
                    a.fs.e[c].fab(bi).raw(),
                    b.fs.e[c].fab(bi).raw(),
                    "E[{c}] box {bi} diverged after restart"
                );
            }
        }
        for (ba_, bb) in a.parts[0].bufs.iter().zip(&b.parts[0].bufs) {
            assert_eq!(ba_.x, bb.x);
            assert_eq!(ba_.ux, bb.ux);
        }
    }

    #[test]
    fn restore_rejects_mismatched_species() {
        let sim = mk_sim();
        let ck = Checkpoint::capture(&sim);
        let mut other = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(16, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .build();
        let e = ck.restore(&mut other).unwrap_err();
        assert!(e.0.contains("species"), "unexpected error: {e}");
    }

    #[test]
    fn restore_rejects_mismatched_layout() {
        let sim = mk_sim();
        let ck = Checkpoint::capture(&sim);
        let mut other = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(32, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .add_species(Species::electrons(
                "e",
                Profile::Uniform { n0: 1.0e24 },
                [2, 1, 1],
            ))
            .build();
        assert!(ck.restore(&mut other).is_err());
    }
}
