//! Checkpoint / restart of particle state and run metadata.
//!
//! Long campaigns on shared machines (the paper's science runs took many
//! wall-clock hours across reservations) need restart capability. Field
//! state is fully reproducible from (metadata + particle state + rerun),
//! but we persist the particle phase space and run clock exactly, via
//! JSON for portability.

use crate::particles::{ParticleBuf, ParticleContainer};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Everything needed to resume particle pushing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    pub time: f64,
    pub istep: u64,
    pub x0: [f64; 3],
    /// Per species, per box.
    pub species: Vec<Vec<ParticleBuf>>,
}

impl Checkpoint {
    pub fn capture(sim: &crate::sim::Simulation) -> Self {
        Self {
            time: sim.time,
            istep: sim.istep,
            x0: sim.fs.geom.x0,
            species: sim
                .parts
                .iter()
                .map(|pc| pc.bufs.clone())
                .collect(),
        }
    }

    /// Restore particle state into a compatible simulation (same domain,
    /// same species set).
    pub fn restore(&self, sim: &mut crate::sim::Simulation) {
        assert_eq!(self.species.len(), sim.parts.len(), "species mismatch");
        sim.time = self.time;
        sim.istep = self.istep;
        sim.fs.geom.x0 = self.x0;
        for (pc, bufs) in sim.parts.iter_mut().zip(&self.species) {
            assert_eq!(pc.bufs.len(), bufs.len(), "box layout mismatch");
            pc.bufs = bufs.clone();
        }
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_vec(self).unwrap())
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        serde_json::from_slice(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    pub fn total_particles(&self) -> usize {
        self.species
            .iter()
            .map(|s| s.iter().map(|b| b.len()).sum::<usize>())
            .sum()
    }
}

/// Convenience: deep-copy particle container (tests, ablations).
pub fn clone_container(pc: &ParticleContainer) -> ParticleContainer {
    ParticleContainer {
        bufs: pc.bufs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::sim::{ShapeOrder, SimulationBuilder};
    use crate::species::Species;
    use mrpic_amr::IntVect;
    use mrpic_field::fieldset::Dim;

    fn mk_sim() -> crate::sim::Simulation {
        SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(16, 1, 16), [1.0e-6; 3], [0.0; 3])
            .periodic([true, true, true])
            .order(ShapeOrder::Quadratic)
            .add_species(Species::electrons(
                "e",
                Profile::Uniform { n0: 1.0e24 },
                [2, 1, 1],
            ))
            .build()
    }

    #[test]
    fn capture_restore_roundtrip() {
        let mut sim = mk_sim();
        sim.run(5);
        let ck = Checkpoint::capture(&sim);
        assert_eq!(ck.istep, 5);
        assert_eq!(ck.total_particles(), sim.total_particles());
        let mut sim2 = mk_sim();
        ck.restore(&mut sim2);
        assert_eq!(sim2.istep, 5);
        assert_eq!(sim2.time, sim.time);
        assert_eq!(sim2.parts[0].bufs[0].x, sim.parts[0].bufs[0].x);
    }

    #[test]
    fn restart_continues_identically() {
        // Fields are rebuilt by rerunning from 0, so compare two paths:
        // run 10 straight vs capture at 10 and restore elsewhere.
        let mut a = mk_sim();
        a.run(10);
        let ck = Checkpoint::capture(&a);
        let dir = std::env::temp_dir().join("mrpic_ck_test.json");
        ck.save(&dir).unwrap();
        let back = Checkpoint::load(&dir).unwrap();
        let _ = std::fs::remove_file(&dir);
        assert_eq!(back.istep, 10);
        assert_eq!(back.total_particles(), ck.total_particles());
        let mut b = mk_sim();
        back.restore(&mut b);
        assert_eq!(b.parts[0].bufs[0].ux, a.parts[0].bufs[0].ux);
    }
}
