//! ADK field (tunnel) ionization.
//!
//! The paper's targets start neutral: "the gas is quasi-instantly
//! ionized by the ultra-intense laser field" and the solid "forms a
//! plasma orders of magnitude denser than gas". The science runs use
//! pre-ionized plasmas (as do ours), but field ionization is a core
//! capability of the production code and lets `mrpic` model the
//! ionization-injection experiments cited in the paper (\[11\]–\[13\]).
//!
//! The Ammosov–Delone–Krainov (ADK) quasi-static rate for a charge state
//! with ionization potential `I_p` (atomic units) in a field `E` (atomic
//! units):
//!
//! ```text
//! kappa = sqrt(2 I_p),   n* = Z / kappa
//! w = C_{n*}^2 * I_p * (2 kappa^3 / E)^(2 n* - 1) * exp(-2 kappa^3 / (3 E))
//! C_{n*}^2 = 2^(2 n*) / (n* Gamma(n* + 1) Gamma(n*))
//! ```
//!
//! Macro-ions carry a charge state; when a state ionizes (all-or-nothing
//! sampling per macroparticle, the standard PIC treatment), an electron
//! macroparticle with the ion's weight is born at rest at the ion
//! position. Ions are treated as immobile on the femtosecond scales of
//! interest (documented approximation; the ionization current is not
//! deposited).

use crate::particles::ParticleContainer;
use crate::sim::{ShapeOrder, Simulation};
use crate::species::InjectRng;
use mrpic_field::fieldset::Dim;
use mrpic_kernels::gather::{gather2, gather3, EmOut};
use mrpic_kernels::shape::{Cubic, Linear, Quadratic};
use serde::{Deserialize, Serialize};

/// Atomic unit of electric field \[V/m\].
pub const E_AU: f64 = 5.142_206_74e11;
/// Atomic unit of time \[s\].
pub const T_AU: f64 = 2.418_884_326e-17;
/// Hydrogen ionization energy \[eV\] (1 a.u. = 2 Ry).
pub const I_H_EV: f64 = 13.605_693;

/// A chemical element with its successive ionization energies \[eV\].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Element {
    pub name: &'static str,
    pub z: u8,
    pub ionization_ev: Vec<f64>,
}

impl Element {
    pub fn hydrogen() -> Self {
        Self {
            name: "H",
            z: 1,
            ionization_ev: vec![13.598],
        }
    }

    pub fn helium() -> Self {
        Self {
            name: "He",
            z: 2,
            ionization_ev: vec![24.587, 54.418],
        }
    }

    /// Nitrogen — the workhorse of ionization injection: the L-shell
    /// (first 5 levels) ionizes in the pulse's rising edge while the
    /// K-shell (N5+ -> N6+, 552 eV) only ionizes near the peak.
    pub fn nitrogen() -> Self {
        Self {
            name: "N",
            z: 7,
            ionization_ev: vec![14.534, 29.601, 47.449, 77.474, 97.890, 552.07, 667.05],
        }
    }

    pub fn argon() -> Self {
        Self {
            name: "Ar",
            z: 18,
            ionization_ev: vec![15.760, 27.630, 40.74, 59.81, 75.02, 91.01, 124.32, 143.46],
        }
    }
}

/// ln Gamma via the Lanczos approximation (|err| < 1e-10 for x > 0).
fn ln_gamma(x: f64) -> f64 {
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const G: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// ADK ionization rate \[1/s\] for charge state `charge_after - 1 ->
/// charge_after` with potential `ip_ev`, in field `e_vm` \[V/m\].
pub fn adk_rate(ip_ev: f64, charge_after: u8, e_vm: f64) -> f64 {
    if e_vm <= 0.0 {
        return 0.0;
    }
    let ip = ip_ev / (2.0 * I_H_EV); // I_p in Hartree a.u.
    let e = (e_vm / E_AU).max(1e-12);
    let kappa = (2.0 * ip).sqrt();
    let nstar = charge_after as f64 / kappa;
    let k3 = kappa * kappa * kappa;
    // C_{n*}^2 with the Stirling-safe log-gamma.
    let ln_c2 =
        2.0 * nstar * std::f64::consts::LN_2 - nstar.ln() - ln_gamma(nstar + 1.0) - ln_gamma(nstar);
    let ln_w = ln_c2 + ip.ln() + (2.0 * nstar - 1.0) * (2.0 * k3 / e).ln() - 2.0 * k3 / (3.0 * e);
    (ln_w.exp() / T_AU).min(1.0e30)
}

/// Barrier-suppression field \[V/m\]: above it ionization is effectively
/// instantaneous (`E_BSI = I_p^2 / (4 Z)` in a.u.).
pub fn barrier_suppression_field(ip_ev: f64, charge_after: u8) -> f64 {
    let ip = ip_ev / (2.0 * I_H_EV);
    E_AU * ip * ip / (4.0 * charge_after as f64)
}

/// Ionization probability over `dt` in field `e_vm`.
pub fn ionization_probability(ip_ev: f64, charge_after: u8, e_vm: f64, dt: f64) -> f64 {
    let w = adk_rate(ip_ev, charge_after, e_vm);
    1.0 - (-w * dt).exp()
}

/// A population of immobile macro-ions with tracked charge states.
#[derive(Clone, Debug)]
pub struct IonReservoir {
    pub element: Element,
    /// Ion positions/weights, organized per box like any species; the
    /// momenta are unused (immobile approximation).
    pub ions: ParticleContainer,
    /// Charge state per macro-ion, parallel to `ions` (ions never move,
    /// so the parallel arrays stay aligned).
    pub levels: Vec<Vec<u8>>,
    rng: InjectRng,
}

impl IonReservoir {
    pub fn new(element: Element, ions: ParticleContainer, seed: u64) -> Self {
        let levels = ions.bufs.iter().map(|b| vec![0u8; b.len()]).collect();
        Self {
            element,
            ions,
            levels,
            rng: InjectRng::new(seed),
        }
    }

    /// Total electrons already released (weighted).
    pub fn released_weight(&self) -> f64 {
        let mut w = 0.0;
        for (buf, lv) in self.ions.bufs.iter().zip(&self.levels) {
            for i in 0..buf.len() {
                w += buf.w[i] * lv[i] as f64;
            }
        }
        w
    }

    /// Mean charge state.
    pub fn mean_level(&self) -> f64 {
        let mut n = 0usize;
        let mut s = 0usize;
        for lv in &self.levels {
            n += lv.len();
            s += lv.iter().map(|&l| l as usize).sum::<usize>();
        }
        if n == 0 {
            0.0
        } else {
            s as f64 / n as f64
        }
    }
}

/// One ionization step: gather |E| at the ion positions from `sim`'s
/// fields, advance charge states by ADK sampling, and append newborn
/// electrons (ion weight, at rest) to `sim.parts[electron_species]`.
/// Returns the number of ionization events.
pub fn ionize(sim: &mut Simulation, res: &mut IonReservoir, electron_species: usize) -> usize {
    let dim = sim.dim;
    let order = sim.order;
    let dt = sim.dt;
    let geom = sim.fs.geom.kernel_geom();
    let nlevels = res.element.ionization_ev.len() as u8;
    let mut events = 0usize;
    for bi in 0..sim.fs.nfabs() {
        let n = res.ions.bufs[bi].len();
        if n == 0 {
            continue;
        }
        // Gather E at ion positions.
        let mut e = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut b = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        {
            let views = sim.fs.em_views(bi);
            let buf = &res.ions.bufs[bi];
            let mut out = EmOut {
                ex: &mut e.0,
                ey: &mut e.1,
                ez: &mut e.2,
                bx: &mut b.0,
                by: &mut b.1,
                bz: &mut b.2,
            };
            match (dim, order) {
                (Dim::Two, ShapeOrder::Linear) => {
                    gather2::<Linear, f64>(&buf.x, &buf.z, &geom, &views, &mut out)
                }
                (Dim::Two, ShapeOrder::Quadratic) => {
                    gather2::<Quadratic, f64>(&buf.x, &buf.z, &geom, &views, &mut out)
                }
                (Dim::Two, ShapeOrder::Cubic) => {
                    gather2::<Cubic, f64>(&buf.x, &buf.z, &geom, &views, &mut out)
                }
                (Dim::Three, ShapeOrder::Linear) => {
                    gather3::<Linear, f64>(&buf.x, &buf.y, &buf.z, &geom, &views, &mut out)
                }
                (Dim::Three, ShapeOrder::Quadratic) => {
                    gather3::<Quadratic, f64>(&buf.x, &buf.y, &buf.z, &geom, &views, &mut out)
                }
                (Dim::Three, ShapeOrder::Cubic) => {
                    gather3::<Cubic, f64>(&buf.x, &buf.y, &buf.z, &geom, &views, &mut out)
                }
            }
        }
        let ions = &res.ions.bufs[bi];
        let levels = &mut res.levels[bi];
        let electrons = &mut sim.parts[electron_species].bufs[bi];
        for i in 0..n {
            let lv = levels[i];
            if lv >= nlevels {
                continue; // fully stripped
            }
            let emag = (e.0[i] * e.0[i] + e.1[i] * e.1[i] + e.2[i] * e.2[i]).sqrt();
            let ip = res.element.ionization_ev[lv as usize];
            let p = ionization_probability(ip, lv + 1, emag, dt);
            if p > 0.0 && res.rng.uniform() < p {
                levels[i] = lv + 1;
                electrons.push(ions.x[i], ions.y[i], ions.z[i], 0.0, 0.0, 0.0, ions.w[i]);
                events += 1;
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = Gamma(2) = 1, Gamma(5) = 24, Gamma(1/2) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
    }

    #[test]
    fn hydrogen_barrier_suppression() {
        // Known textbook value: E_BSI(H) ~ 3.21e10 V/m.
        let e = barrier_suppression_field(13.598, 1);
        assert!((e / 3.21e10 - 1.0).abs() < 0.02, "{e:e}");
    }

    #[test]
    fn rate_is_monotonic_in_field_and_negligible_at_low_field() {
        let ip = 13.598;
        let w_lo = adk_rate(ip, 1, 1.0e9);
        let w_mid = adk_rate(ip, 1, 1.0e10);
        let w_hi = adk_rate(ip, 1, 3.0e10);
        assert!(w_lo < w_mid && w_mid < w_hi);
        // At 1 GV/m, hydrogen survives a laser period comfortably.
        assert!(ionization_probability(ip, 1, 1.0e9, 2.7e-15) < 1e-6);
        // At the barrier-suppression field the ADK rate is ~6e13 1/s
        // (hand calculation: w_au = 64 exp(-32/3)): tens of fs strip it.
        let w_bsi = adk_rate(ip, 1, 3.21e10);
        assert!((w_bsi / 6.2e13 - 1.0).abs() < 0.1, "w(BSI) = {w_bsi:e}");
        // At twice the BSI field a single femtosecond strips it.
        assert!(ionization_probability(ip, 1, 6.4e10, 1.0e-15) > 0.99);
    }

    #[test]
    fn nitrogen_k_shell_needs_much_higher_field() {
        // L-shell (N -> N+) ionizes around a0 << 1; K-shell (N5+ -> N6+)
        // needs relativistic fields -- the ionization-injection knob.
        let n = Element::nitrogen();
        let e_l = barrier_suppression_field(n.ionization_ev[0], 1);
        let e_k = barrier_suppression_field(n.ionization_ev[5], 6);
        assert!(e_k / e_l > 100.0, "L {e_l:e} vs K {e_k:e}");
    }

    #[test]
    fn reservoir_ionizes_in_a_driven_simulation() {
        use crate::profile::Profile;
        use crate::sim::SimulationBuilder;
        use crate::species::Species;
        use mrpic_amr::IntVect;

        // Empty electron species; hydrogen reservoir; strong static-ish
        // field imposed by a laser antenna.
        let dx = 0.1e-6;
        let mut sim = SimulationBuilder::new(Dim::Two)
            .domain(IntVect::new(96, 1, 16), [dx; 3], [0.0; 3])
            .periodic([false, false, true])
            .pml(8)
            .order(ShapeOrder::Quadratic)
            .add_species(Species::electrons(
                "electrons",
                Profile::Uniform { n0: 0.0 },
                [1, 1, 1],
            ))
            .add_laser({
                let mut l = crate::laser::antenna_for_a0(
                    1.0,
                    0.8e-6,
                    6.0e-15,
                    1.0e-6,
                    0.8e-6,
                    f64::INFINITY,
                );
                l.t_peak = 10.0e-15;
                l
            })
            .build();
        // Neutral hydrogen gas in the pulse's path.
        let mut ions = ParticleContainer::new(sim.fs.nfabs());
        let sp = Species::electrons("h", Profile::Uniform { n0: 1.0e24 }, [1, 1, 1]);
        let region = mrpic_amr::IndexBox::new(IntVect::new(40, 0, 0), IntVect::new(60, 1, 16));
        crate::species::inject(
            &sp,
            Dim::Two,
            &sim.fs.geom,
            &sim.fs.boxarray().clone(),
            &region,
            &mut ions,
            3,
        );
        let mut res = IonReservoir::new(Element::hydrogen(), ions, 17);
        assert_eq!(res.mean_level(), 0.0);
        let mut total_events = 0;
        for _ in 0..250 {
            sim.step();
            total_events += ionize(&mut sim, &mut res, 0);
        }
        // An a0 = 1 pulse (E ~ 4e12 V/m >> E_BSI) fully strips hydrogen
        // wherever it passes.
        assert!(total_events > 0, "no ionization happened");
        assert!(
            res.mean_level() > 0.9,
            "mean level {} after the pulse",
            res.mean_level()
        );
        // Electrons inherit the ion weights.
        let released = res.released_weight();
        let held: f64 = sim.parts[0].total_weight();
        assert!((held - released).abs() < 1e-6 * released.max(1.0));
    }
}
