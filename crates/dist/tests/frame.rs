//! Property tests of the socket wire-frame codec: arbitrary frames
//! round-trip bit-exactly, and every corruption of a valid frame —
//! truncation, wrong magic, foreign protocol version, flipped CRC —
//! decodes to a structured [`FrameError`] without panicking.

use mrpic_dist::frame::{
    self, FrameError, FrameKind, FRAME_MAGIC, HEADER_LEN, MAX_PAYLOAD, PROTO_VERSION, TRAILER_LEN,
};
use mrpic_dist::transport::{Phase, Tag, TransportErrorKind};
use proptest::prelude::*;

fn arb_phase() -> impl Strategy<Value = Phase> {
    (1u8..5).prop_map(|b| Phase::from_u8(b).unwrap())
}

fn arb_control_kind() -> impl Strategy<Value = FrameKind> {
    (1u8..4).prop_map(|b| match b {
        1 => FrameKind::Hello,
        2 => FrameKind::HelloAck,
        _ => FrameKind::Retire,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any data frame decodes back to exactly the metadata and payload
    /// it was built from, and the tag reconstructs.
    #[test]
    fn data_frames_roundtrip(
        src in 0u16..512,
        dst in 0u16..512,
        phase in arb_phase(),
        seq in any::<u32>(),
        step in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let tag = Tag { phase, seq };
        let buf = frame::encode_data(src, dst, tag, step, &payload);
        prop_assert_eq!(buf.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
        let (h, body) = frame::decode(&buf).unwrap();
        prop_assert_eq!(h.kind, FrameKind::Data);
        prop_assert_eq!((h.src, h.dst, h.seq, h.step), (src, dst, seq, step));
        prop_assert_eq!(h.tag(), Some(tag));
        prop_assert_eq!(body, payload);
    }

    /// Control frames (phase byte 0) round-trip and yield no tag.
    #[test]
    fn control_frames_roundtrip(
        kind in arb_control_kind(),
        src in 0u16..512,
        dst in 0u16..512,
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let buf = frame::encode(kind, 0, src, dst, 0, 0, &payload);
        let (h, body) = frame::decode(&buf).unwrap();
        prop_assert_eq!(h.kind, kind);
        prop_assert_eq!(h.tag(), None);
        prop_assert_eq!(body, payload);
    }

    /// Every strict prefix of a valid frame is `Truncated` — the codec
    /// asks for more bytes rather than misreading what it has. The
    /// streaming reader relies on this to know when a partial read
    /// must keep waiting on the connection.
    #[test]
    fn every_prefix_is_truncated(
        seq in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cut in any::<u32>(),
    ) {
        let tag = Tag { phase: Phase::Fill, seq };
        let buf = frame::encode_data(1, 0, tag, 7, &payload);
        let keep = cut as usize % buf.len(); // strictly < buf.len()
        match frame::decode(&buf[..keep]) {
            Err(FrameError::Truncated { need, have }) => {
                prop_assert_eq!(have, keep);
                prop_assert!(need > keep);
                prop_assert!(need <= buf.len());
            }
            other => prop_assert!(false, "prefix of {keep} bytes gave {other:?}"),
        }
    }

    /// A wrong magic word is rejected as `BadMagic` (carrying the bytes
    /// seen) and classified as a desync — the stream is not speaking
    /// our protocol at all.
    #[test]
    fn wrong_magic_is_rejected(
        delta in 1u32..u32::MAX,
        payload in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let magic = FRAME_MAGIC ^ delta; // nonzero xor: guaranteed wrong
        let mut buf = frame::encode(FrameKind::Hello, 0, 0, 1, 0, 0, &payload);
        buf[..4].copy_from_slice(&magic.to_le_bytes());
        let err = frame::decode(&buf).unwrap_err();
        prop_assert_eq!(err, FrameError::BadMagic(magic));
        prop_assert_eq!(err.kind(), TransportErrorKind::Desync);
    }

    /// A foreign protocol version is rejected before anything else in
    /// the frame is trusted.
    #[test]
    fn version_mismatch_is_rejected(delta in 1u16..u16::MAX) {
        let version = PROTO_VERSION ^ delta;
        let mut buf = frame::encode(FrameKind::Hello, 0, 0, 1, 0, 0, &[9]);
        buf[4..6].copy_from_slice(&version.to_le_bytes());
        let err = frame::decode(&buf).unwrap_err();
        prop_assert_eq!(err, FrameError::VersionMismatch { got: version, want: PROTO_VERSION });
        prop_assert_eq!(err.kind(), TransportErrorKind::Desync);
    }

    /// Flipping any single bit outside the fields with their own
    /// structural checks (magic, version, kind, phase, length) is caught
    /// by the trailing CRC. Routing metadata is covered, not just the
    /// payload: a frame whose `dst` flipped in transit is refused, never
    /// delivered to the wrong rank.
    #[test]
    fn any_crc_covered_bit_flip_is_caught(
        seq in any::<u32>(),
        step in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1..64),
        which in any::<u32>(),
        bit in 0usize..8,
    ) {
        let tag = Tag { phase: Phase::Sum, seq };
        let mut buf = frame::encode_data(3, 4, tag, step, &payload);
        // Flippable region: src/dst/seq/step (offsets 8..24) plus the
        // whole payload. Magic/version/kind/phase/len have dedicated
        // structural errors; the CRC trailer itself is exercised below.
        let body_len = buf.len() - TRAILER_LEN;
        let flippable: Vec<usize> = (8..24).chain(HEADER_LEN..body_len).collect();
        let at = flippable[which as usize % flippable.len()];
        buf[at] ^= 1 << bit;
        match frame::decode(&buf).unwrap_err() {
            FrameError::CrcMismatch { got, want } => prop_assert_ne!(got, want),
            other => prop_assert!(false, "flip at byte {at} gave {other:?}"),
        }
    }

    /// A damaged CRC trailer is itself a `CrcMismatch`: a frame is
    /// never accepted on header validity alone.
    #[test]
    fn flipped_trailer_is_caught(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        which in 0usize..TRAILER_LEN,
        bit in 0usize..8,
    ) {
        let tag = Tag { phase: Phase::Redist, seq: 5 };
        let mut buf = frame::encode_data(0, 1, tag, 2, &payload);
        let n = buf.len();
        buf[n - TRAILER_LEN + which] ^= 1 << bit;
        let err = frame::decode(&buf).unwrap_err();
        prop_assert!(matches!(err, FrameError::CrcMismatch { .. }), "{err:?}");
        prop_assert_eq!(err.kind(), TransportErrorKind::Corrupt);
    }

    /// Arbitrary garbage never panics the decoder: every outcome is a
    /// structured error (random bytes cannot clear the magic + CRC
    /// gauntlet, but the property under test is "no panic", so the
    /// results are deliberately ignored).
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = frame::decode_header(&bytes);
        let _ = frame::decode(&bytes);
    }

    /// A length field beyond the 1 GiB cap is `Oversized` — the reader
    /// must never allocate a buffer a hostile peer dictates.
    #[test]
    fn oversized_length_is_rejected(extra in 1u32..(u32::MAX - MAX_PAYLOAD)) {
        let mut buf = frame::encode(FrameKind::Retire, 0, 2, 0, 0, 9, &[]);
        let n = MAX_PAYLOAD + extra;
        buf[24..28].copy_from_slice(&n.to_le_bytes());
        let err = frame::decode(&buf).unwrap_err();
        prop_assert_eq!(err, FrameError::Oversized(n));
        prop_assert_eq!(err.kind(), TransportErrorKind::Desync);
    }
}

#[test]
fn unknown_kind_and_phase_bytes_are_rejected() {
    let mut buf = frame::encode(FrameKind::Hello, 0, 0, 1, 0, 0, &[]);
    buf[6] = 200;
    assert_eq!(frame::decode(&buf).unwrap_err(), FrameError::BadKind(200));

    let tag = Tag {
        phase: Phase::Fill,
        seq: 0,
    };
    let mut buf = frame::encode_data(0, 1, tag, 0, &[]);
    buf[7] = 9; // outside the Phase range, on a data frame
    assert_eq!(frame::decode(&buf).unwrap_err(), FrameError::BadPhase(9));
}
