//! mrpic-dist: a multi-rank distributed runtime for the PIC step loop.
//!
//! Executes the full mesh-refined PIC step across N ranks, each owning a
//! shard of the [`mrpic_amr::DistributionMapping`] and running in its own
//! thread, with all cross-rank data flowing as serialized byte messages
//! over a pluggable [`transport::Endpoint`]. The v1 backends are
//! in-process (`std::sync::mpsc` channel mesh), a recording wrapper that
//! captures real message traces for the cluster simulator, and a
//! fault-injecting wrapper ([`faults::FaultyEndpoint`]) driven by a
//! seeded [`faults::FaultPlan`] for chaos testing.
//!
//! The headline property, proven by `tests/dist.rs`: `step()` is bitwise
//! identical across 1, 2, and 4 ranks — including through an adopted
//! load-balance decision that physically migrates box data between
//! ranks. See DESIGN.md §9 for the determinism argument. The same
//! invariant makes crash recovery exact: `tests/faults.rs` proves that
//! runs under injected transient faults — and runs that lose a rank
//! mid-flight and roll back to a checkpoint epoch (DESIGN.md §10) —
//! still match the unfaulted serial run bitwise.

pub mod comm;
pub mod faults;
pub mod frame;
pub mod msg;
pub mod obswire;
pub mod sim;
pub mod socket;
pub mod transport;

pub use comm::{DistComm, RankLoss};
pub use faults::{
    faulty_mem_transport, CrashPoint, FaultInjector, FaultPlan, FaultyEndpoint, PhasePick,
};
pub use frame::{FrameError, FrameHeader, FrameKind, FRAME_MAGIC, PROTO_VERSION};
pub use obswire::{spawn_metrics_listener, MetricsPusher, METRICS_SOCK_FILE};
pub use sim::{
    boxed, parse_elastic_plan, DistSim, ElasticAction, ElasticEvent, RecoveryEvent, ResizeEvent,
    TransportKind,
};
pub use socket::{proc_transport, socket_mesh, MeshCfg, ProcEndpoint, SocketEndpoint, WireKind};
pub use transport::{
    mem_transport, mem_transport_with_timeout, recording_mem_transport, Endpoint, MemEndpoint,
    MsgRecord, Phase, Recorder, RecordingEndpoint, RecvRecord, Tag, TransportError,
    TransportErrorKind,
};
