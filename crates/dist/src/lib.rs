//! mrpic-dist: a multi-rank distributed runtime for the PIC step loop.
//!
//! Executes the full mesh-refined PIC step across N ranks, each owning a
//! shard of the [`mrpic_amr::DistributionMapping`] and running in its own
//! thread, with all cross-rank data flowing as serialized byte messages
//! over a pluggable [`transport::Endpoint`]. The v1 backends are
//! in-process (`std::sync::mpsc` channel mesh) and a recording wrapper
//! that captures real message traces for the cluster simulator.
//!
//! The headline property, proven by `tests/dist.rs`: `step()` is bitwise
//! identical across 1, 2, and 4 ranks — including through an adopted
//! load-balance decision that physically migrates box data between
//! ranks. See DESIGN.md §9 for the determinism argument.

pub mod comm;
pub mod msg;
pub mod sim;
pub mod transport;

pub use comm::DistComm;
pub use sim::{boxed, DistSim};
pub use transport::{
    mem_transport, recording_mem_transport, Endpoint, MemEndpoint, MsgRecord, Phase, Recorder,
    RecordingEndpoint, Tag,
};
