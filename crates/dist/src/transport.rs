//! Pluggable point-to-point transport.
//!
//! The distributed runtime speaks to its peers only through [`Endpoint`]:
//! ordered, reliable, tagged byte messages between ranks (the MPI subset
//! the step loop needs). v1 ships two backends — an in-process
//! [`MemEndpoint`] over `std::sync::mpsc` channel pairs, and a
//! [`RecordingEndpoint`] wrapper that captures every message (step,
//! phase, src, dst, size) so the cluster simulator can price real traffic
//! instead of modeled traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Communication phase of a message (part of its tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Guard-cell fill (copy semantics).
    Fill = 1,
    /// Guard-deposit sum (add semantics).
    Sum = 2,
    /// Particle redistribution.
    Redist = 3,
    /// Box migration after an adopted rebalance.
    Migrate = 4,
}

/// Message tag: phase plus a per-communicator sequence number. Both
/// sides derive the tag from the same deterministic schedule, so a
/// mismatch on receive means the protocol desynchronized — we assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tag {
    pub phase: Phase,
    pub seq: u32,
}

/// One rank's handle on the transport.
///
/// Guarantees the runtime relies on: per ordered pair `(src, dst)`,
/// messages arrive exactly once and in send order; `recv` blocks until
/// the matching message arrives. Ranks never send to themselves.
pub trait Endpoint: Send {
    fn rank(&self) -> usize;
    fn nranks(&self) -> usize;
    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>);
    fn recv(&mut self, src: usize, tag: Tag) -> Vec<u8>;
    /// Current simulation step, for trace grouping.
    fn set_step(&mut self, _step: u64) {}
}

type Msg = (Tag, Vec<u8>);
type MsgTx = Sender<Msg>;
type MsgRx = Receiver<Msg>;

/// In-process backend: an n×n mesh of mpsc channels.
pub struct MemEndpoint {
    rank: usize,
    senders: Vec<Option<MsgTx>>,
    receivers: Vec<Option<MsgRx>>,
}

/// Build a fully connected in-process transport for `nranks` ranks.
pub fn mem_transport(nranks: usize) -> Vec<MemEndpoint> {
    let mut senders: Vec<Vec<Option<MsgTx>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<MsgRx>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for s in 0..nranks {
        for d in 0..nranks {
            if s == d {
                continue;
            }
            let (tx, rx) = channel();
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }
    senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (senders, receivers))| MemEndpoint {
            rank,
            senders,
            receivers,
        })
        .collect()
}

impl Endpoint for MemEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.senders.len()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) {
        self.senders[dst]
            .as_ref()
            .expect("no channel to self")
            .send((tag, payload))
            .expect("peer endpoint dropped");
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        let (got, payload) = self.receivers[src]
            .as_ref()
            .expect("no channel to self")
            .recv()
            .expect("peer endpoint dropped");
        assert_eq!(
            got, tag,
            "rank {} desynchronized receiving from rank {src}",
            self.rank
        );
        payload
    }
}

/// One captured message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    pub step: u64,
    pub phase: Phase,
    pub src: usize,
    pub dst: usize,
    pub bytes: u64,
}

/// Shared trace sink for a recording transport.
#[derive(Debug, Default)]
pub struct Recorder {
    msgs: Mutex<Vec<MsgRecord>>,
    step: AtomicU64,
}

impl Recorder {
    /// Snapshot of all messages captured so far.
    pub fn messages(&self) -> Vec<MsgRecord> {
        self.msgs.lock().unwrap().clone()
    }

    /// Total bytes per ordered `(src, dst)` rank pair.
    pub fn pair_bytes(&self) -> Vec<(usize, usize, u64)> {
        let msgs = self.msgs.lock().unwrap();
        let mut acc: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        for m in msgs.iter() {
            *acc.entry((m.src, m.dst)).or_default() += m.bytes;
        }
        acc.into_iter().map(|((s, d), b)| (s, d, b)).collect()
    }
}

/// Wraps any [`Endpoint`], logging every sent message into a shared
/// [`Recorder`].
pub struct RecordingEndpoint<E: Endpoint> {
    inner: E,
    recorder: Arc<Recorder>,
}

/// Build an in-process transport whose message traffic is captured in
/// the returned [`Recorder`].
pub fn recording_mem_transport(
    nranks: usize,
) -> (Vec<RecordingEndpoint<MemEndpoint>>, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::default());
    let eps = mem_transport(nranks)
        .into_iter()
        .map(|inner| RecordingEndpoint {
            inner,
            recorder: Arc::clone(&recorder),
        })
        .collect();
    (eps, recorder)
}

impl<E: Endpoint> Endpoint for RecordingEndpoint<E> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) {
        self.recorder.msgs.lock().unwrap().push(MsgRecord {
            step: self.recorder.step.load(Ordering::Relaxed),
            phase: tag.phase,
            src: self.inner.rank(),
            dst,
            bytes: payload.len() as u64,
        });
        self.inner.send(dst, tag, payload);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        self.inner.recv(src, tag)
    }

    fn set_step(&mut self, step: u64) {
        self.recorder.step.store(step, Ordering::Relaxed);
        self.inner.set_step(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Tag = Tag {
        phase: Phase::Fill,
        seq: 7,
    };

    #[test]
    fn mem_transport_delivers_in_order() {
        let mut eps = mem_transport(3);
        let (a, rest) = eps.split_at_mut(1);
        a[0].send(1, T, vec![1]);
        a[0].send(1, Tag { seq: 8, ..T }, vec![2, 2]);
        a[0].send(2, T, vec![3]);
        assert_eq!(rest[0].recv(0, T), vec![1]);
        assert_eq!(rest[0].recv(0, Tag { seq: 8, ..T }), vec![2, 2]);
        assert_eq!(rest[1].recv(0, T), vec![3]);
    }

    #[test]
    #[should_panic(expected = "desynchronized")]
    fn tag_mismatch_asserts() {
        let mut eps = mem_transport(2);
        let (a, b) = eps.split_at_mut(1);
        a[0].send(1, T, vec![]);
        b[0].recv(0, Tag { seq: 9, ..T });
    }

    #[test]
    fn recorder_captures_traffic() {
        let (mut eps, rec) = recording_mem_transport(2);
        eps[0].set_step(5);
        let (a, b) = eps.split_at_mut(1);
        a[0].send(1, T, vec![0; 64]);
        b[0].recv(0, T);
        b[0].send(0, Tag { seq: 8, ..T }, vec![0; 16]);
        a[0].recv(1, Tag { seq: 8, ..T });
        let msgs = rec.messages();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].step, 5);
        assert_eq!(msgs[0].bytes, 64);
        assert_eq!(rec.pair_bytes(), vec![(0, 1, 64), (1, 0, 16)]);
    }
}
