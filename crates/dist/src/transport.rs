//! Pluggable point-to-point transport.
//!
//! The distributed runtime speaks to its peers only through [`Endpoint`]:
//! ordered, reliable, tagged byte messages between ranks (the MPI subset
//! the step loop needs). Backends: an in-process [`MemEndpoint`] over
//! `std::sync::mpsc` channel pairs, a [`RecordingEndpoint`] wrapper that
//! captures every message (step, phase, seq, src, dst, size) plus the
//! receive-side wait time so the cluster simulator can price real
//! traffic, and a [`crate::faults::FaultyEndpoint`] wrapper that injects
//! a seeded, deterministic schedule of delays, corruption, transient
//! failures, and rank crashes.
//!
//! Transport operations return [`TransportError`] instead of panicking:
//! a lost peer, a receive timeout, or a desynchronized tag is reported
//! with full rank/phase/seq/step context so the runtime can retry,
//! degrade, or recover instead of killing the whole run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Communication phase of a message (part of its tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Guard-cell fill (copy semantics).
    Fill = 1,
    /// Guard-deposit sum (add semantics).
    Sum = 2,
    /// Particle redistribution.
    Redist = 3,
    /// Box migration after an adopted rebalance.
    Migrate = 4,
}

impl Phase {
    /// Inverse of `phase as u8`, for wire decoding. `None` for bytes
    /// outside the phase range (including 0, reserved for control
    /// frames).
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Phase::Fill),
            2 => Some(Phase::Sum),
            3 => Some(Phase::Redist),
            4 => Some(Phase::Migrate),
            _ => None,
        }
    }
}

/// Message tag: phase plus a per-communicator sequence number. Both
/// sides derive the tag from the same deterministic schedule, so a
/// mismatch on receive means the protocol desynchronized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tag {
    pub phase: Phase,
    pub seq: u32,
}

/// What went wrong in a transport operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// No matching message arrived within the receive timeout.
    Timeout,
    /// A transient (retryable) send/recv failure — the operation did not
    /// take effect and may be retried immediately.
    Transient,
    /// The received payload failed its integrity check.
    Corrupt,
    /// The received tag did not match the expected deterministic
    /// schedule — the protocol desynchronized.
    Desync,
    /// The remote peer is gone (crashed rank or dropped endpoint).
    PeerLost,
    /// This rank itself has crashed (fault injection) and must stop
    /// participating.
    Crashed,
}

/// A failed transport operation, with enough context to say *which*
/// rank, talking to *whom*, in *which* phase of *which* step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportError {
    pub kind: TransportErrorKind,
    /// Rank reporting the error.
    pub rank: usize,
    /// Remote rank involved in the failed operation.
    pub peer: usize,
    pub phase: Phase,
    pub seq: u32,
    /// Simulation step the transport was marked with via `set_step`.
    pub step: u64,
    /// Milliseconds the operation blocked before failing. Nonzero only
    /// for receive timeouts, where "how long did we wait" and "which
    /// seq is outstanding" are the two facts a recovery decision needs.
    pub waited_ms: u64,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} on rank {} (peer {}, phase {:?}, seq {}, step {})",
            self.kind, self.rank, self.peer, self.phase, self.seq, self.step
        )?;
        if self.kind == TransportErrorKind::Timeout {
            write!(
                f,
                " after waiting {} ms for outstanding seq {}",
                self.waited_ms, self.seq
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    pub fn new(kind: TransportErrorKind, rank: usize, peer: usize, tag: Tag, step: u64) -> Self {
        Self {
            kind,
            rank,
            peer,
            phase: tag.phase,
            seq: tag.seq,
            step,
            waited_ms: 0,
        }
    }

    /// Attach the blocked duration of a failed wait (receive timeouts).
    pub fn with_wait(mut self, waited: Duration) -> Self {
        self.waited_ms = waited.as_millis() as u64;
        self
    }

    /// True for failures worth an immediate bounded retry (the message
    /// was not consumed, or the sender will redeliver).
    pub fn is_transient(&self) -> bool {
        self.kind == TransportErrorKind::Transient
    }
}

/// One rank's handle on the transport.
///
/// Guarantees the runtime relies on: per ordered pair `(src, dst)`,
/// messages arrive exactly once and in send order; `recv` blocks until
/// the matching message arrives or the backend's receive timeout
/// expires. Ranks never send to themselves.
pub trait Endpoint: Send {
    fn rank(&self) -> usize;
    fn nranks(&self) -> usize;
    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) -> Result<(), TransportError>;
    fn recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError>;
    /// Current simulation step, for trace grouping and error context.
    fn set_step(&mut self, _step: u64) {}
    /// Drain `(bytes, flushes)` actually put on a physical wire since
    /// the last call. Zero for in-process backends; the socket transport
    /// counts framed bytes and stream flushes so telemetry can separate
    /// wire traffic from logical message volume.
    fn take_wire_counters(&mut self) -> (u64, u64) {
        (0, 0)
    }
}

type Msg = (Tag, Vec<u8>);
type MsgTx = Sender<Msg>;
type MsgRx = Receiver<Msg>;

/// Default receive timeout of the in-process backend: generous enough
/// that a healthy peer always answers in time, short enough that a dead
/// peer is detected rather than hanging the run forever.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// In-process backend: an n×n mesh of mpsc channels.
pub struct MemEndpoint {
    rank: usize,
    step: u64,
    timeout: Duration,
    senders: Vec<Option<MsgTx>>,
    receivers: Vec<Option<MsgRx>>,
}

/// Build a fully connected in-process transport for `nranks` ranks.
pub fn mem_transport(nranks: usize) -> Vec<MemEndpoint> {
    mem_transport_with_timeout(nranks, DEFAULT_RECV_TIMEOUT)
}

/// Build a fully connected in-process transport whose `recv` gives up
/// with [`TransportErrorKind::Timeout`] after `timeout`.
pub fn mem_transport_with_timeout(nranks: usize, timeout: Duration) -> Vec<MemEndpoint> {
    let mut senders: Vec<Vec<Option<MsgTx>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<MsgRx>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for s in 0..nranks {
        for d in 0..nranks {
            if s == d {
                continue;
            }
            let (tx, rx) = channel();
            senders[s][d] = Some(tx);
            receivers[d][s] = Some(rx);
        }
    }
    senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (senders, receivers))| MemEndpoint {
            rank,
            step: 0,
            timeout,
            senders,
            receivers,
        })
        .collect()
}

impl Endpoint for MemEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.senders.len()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) -> Result<(), TransportError> {
        let tx = self.senders[dst].as_ref().expect("no channel to self");
        tx.send((tag, payload)).map_err(|_| {
            TransportError::new(TransportErrorKind::PeerLost, self.rank, dst, tag, self.step)
        })
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError> {
        let rx = self.receivers[src].as_ref().expect("no channel to self");
        let t0 = std::time::Instant::now();
        let (got, payload) = rx.recv_timeout(self.timeout).map_err(|e| {
            let kind = match e {
                RecvTimeoutError::Timeout => TransportErrorKind::Timeout,
                RecvTimeoutError::Disconnected => TransportErrorKind::PeerLost,
            };
            TransportError::new(kind, self.rank, src, tag, self.step).with_wait(t0.elapsed())
        })?;
        if got != tag {
            return Err(TransportError::new(
                TransportErrorKind::Desync,
                self.rank,
                src,
                got,
                self.step,
            ));
        }
        Ok(payload)
    }

    fn set_step(&mut self, step: u64) {
        self.step = step;
    }
}

/// One captured sent message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    pub step: u64,
    pub phase: Phase,
    pub seq: u32,
    pub src: usize,
    pub dst: usize,
    pub bytes: u64,
}

/// One captured receive, including how long the receiver waited for the
/// message to arrive — the trace-replay costing uses this to price wait
/// (straggler) time, not just moved bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecvRecord {
    pub step: u64,
    pub phase: Phase,
    pub seq: u32,
    pub src: usize,
    pub dst: usize,
    pub bytes: u64,
    /// Wall seconds the receiving rank blocked in `recv`.
    pub wait_seconds: f64,
}

/// Shared trace sink for a recording transport.
#[derive(Debug, Default)]
pub struct Recorder {
    msgs: Mutex<Vec<MsgRecord>>,
    recvs: Mutex<Vec<RecvRecord>>,
    step: AtomicU64,
}

impl Recorder {
    /// Snapshot of all sent messages captured so far.
    pub fn messages(&self) -> Vec<MsgRecord> {
        self.msgs.lock().unwrap().clone()
    }

    /// Snapshot of all receives captured so far (with wait times).
    pub fn receives(&self) -> Vec<RecvRecord> {
        self.recvs.lock().unwrap().clone()
    }

    /// Total bytes per ordered `(src, dst)` rank pair.
    pub fn pair_bytes(&self) -> Vec<(usize, usize, u64)> {
        let msgs = self.msgs.lock().unwrap();
        let mut acc: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        for m in msgs.iter() {
            *acc.entry((m.src, m.dst)).or_default() += m.bytes;
        }
        acc.into_iter().map(|((s, d), b)| (s, d, b)).collect()
    }

    /// Total seconds each receiving rank spent blocked in `recv`,
    /// indexed by rank (`nranks` long).
    pub fn rank_wait_seconds(&self, nranks: usize) -> Vec<f64> {
        let recvs = self.recvs.lock().unwrap();
        let mut acc = vec![0.0f64; nranks];
        for r in recvs.iter() {
            if r.dst < nranks {
                acc[r.dst] += r.wait_seconds;
            }
        }
        acc
    }

    /// The deterministic message schedule: every sent message as
    /// `(step, phase, seq, src, dst)`, sorted. Capture order across rank
    /// threads is racy, but the *schedule* — which messages exist — is
    /// not, so the sorted view is stable across runs and thread counts.
    pub fn schedule(&self) -> Vec<(u64, u8, u32, usize, usize)> {
        let mut sched: Vec<_> = self
            .msgs
            .lock()
            .unwrap()
            .iter()
            .map(|m| (m.step, m.phase as u8, m.seq, m.src, m.dst))
            .collect();
        sched.sort_unstable();
        sched
    }
}

/// Wraps any [`Endpoint`], logging every sent message and every receive
/// (with wait time) into a shared [`Recorder`].
pub struct RecordingEndpoint<E: Endpoint> {
    inner: E,
    recorder: Arc<Recorder>,
}

impl<E: Endpoint> RecordingEndpoint<E> {
    /// Wrap an endpoint so its traffic lands in `recorder`.
    pub fn wrap(inner: E, recorder: Arc<Recorder>) -> Self {
        Self { inner, recorder }
    }
}

/// Build an in-process transport whose message traffic is captured in
/// the returned [`Recorder`].
pub fn recording_mem_transport(
    nranks: usize,
) -> (Vec<RecordingEndpoint<MemEndpoint>>, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::default());
    let eps = mem_transport(nranks)
        .into_iter()
        .map(|inner| RecordingEndpoint {
            inner,
            recorder: Arc::clone(&recorder),
        })
        .collect();
    (eps, recorder)
}

impl<E: Endpoint> Endpoint for RecordingEndpoint<E> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) -> Result<(), TransportError> {
        self.recorder.msgs.lock().unwrap().push(MsgRecord {
            step: self.recorder.step.load(Ordering::Relaxed),
            phase: tag.phase,
            seq: tag.seq,
            src: self.inner.rank(),
            dst,
            bytes: payload.len() as u64,
        });
        self.inner.send(dst, tag, payload)
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError> {
        let t0 = std::time::Instant::now();
        let payload = self.inner.recv(src, tag)?;
        self.recorder.recvs.lock().unwrap().push(RecvRecord {
            step: self.recorder.step.load(Ordering::Relaxed),
            phase: tag.phase,
            seq: tag.seq,
            src,
            dst: self.inner.rank(),
            bytes: payload.len() as u64,
            wait_seconds: t0.elapsed().as_secs_f64(),
        });
        Ok(payload)
    }

    fn set_step(&mut self, step: u64) {
        self.recorder.step.store(step, Ordering::Relaxed);
        self.inner.set_step(step);
    }

    fn take_wire_counters(&mut self) -> (u64, u64) {
        self.inner.take_wire_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Tag = Tag {
        phase: Phase::Fill,
        seq: 7,
    };

    #[test]
    fn mem_transport_delivers_in_order() {
        let mut eps = mem_transport(3);
        let (a, rest) = eps.split_at_mut(1);
        a[0].send(1, T, vec![1]).unwrap();
        a[0].send(1, Tag { seq: 8, ..T }, vec![2, 2]).unwrap();
        a[0].send(2, T, vec![3]).unwrap();
        assert_eq!(rest[0].recv(0, T).unwrap(), vec![1]);
        assert_eq!(rest[0].recv(0, Tag { seq: 8, ..T }).unwrap(), vec![2, 2]);
        assert_eq!(rest[1].recv(0, T).unwrap(), vec![3]);
    }

    #[test]
    fn tag_mismatch_is_a_desync_error() {
        let mut eps = mem_transport(2);
        let (a, b) = eps.split_at_mut(1);
        a[0].set_step(3);
        b[0].set_step(3);
        a[0].send(1, T, vec![]).unwrap();
        let e = b[0].recv(0, Tag { seq: 9, ..T }).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Desync);
        assert_eq!((e.rank, e.peer, e.step), (1, 0, 3));
        // The error carries the tag actually received.
        assert_eq!(e.seq, 7);
    }

    #[test]
    fn recv_times_out_with_context() {
        let mut eps = mem_transport_with_timeout(2, Duration::from_millis(10));
        eps[1].set_step(5);
        let e = eps[1].recv(0, T).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Timeout);
        assert_eq!(
            (e.rank, e.peer, e.phase, e.seq, e.step),
            (1, 0, Phase::Fill, 7, 5)
        );
        assert!(e.to_string().contains("rank 1"));
        // The timeout reports how long the receiver actually blocked and
        // which seq it was still waiting on.
        assert!(e.waited_ms >= 10, "waited_ms = {}", e.waited_ms);
        let msg = e.to_string();
        assert!(msg.contains("after waiting"), "display: {msg}");
        assert!(msg.contains("ms"), "display: {msg}");
        assert!(msg.contains("outstanding seq 7"), "display: {msg}");
    }

    #[test]
    fn dropped_peer_is_reported_not_panicked() {
        let mut eps = mem_transport(2);
        let ep1 = eps.pop().unwrap();
        drop(ep1);
        let e = eps[0].send(1, T, vec![1, 2]).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::PeerLost);
        let e = eps[0].recv(1, T).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::PeerLost);
    }

    #[test]
    fn recorder_captures_traffic_and_recv_waits() {
        let (mut eps, rec) = recording_mem_transport(2);
        eps[0].set_step(5);
        let (a, b) = eps.split_at_mut(1);
        a[0].send(1, T, vec![0; 64]).unwrap();
        b[0].recv(0, T).unwrap();
        b[0].send(0, Tag { seq: 8, ..T }, vec![0; 16]).unwrap();
        a[0].recv(1, Tag { seq: 8, ..T }).unwrap();
        let msgs = rec.messages();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].step, 5);
        assert_eq!(msgs[0].seq, 7);
        assert_eq!(msgs[0].bytes, 64);
        assert_eq!(rec.pair_bytes(), vec![(0, 1, 64), (1, 0, 16)]);
        // Receive side: both receives logged, with non-negative waits.
        let recvs = rec.receives();
        assert_eq!(recvs.len(), 2);
        assert_eq!((recvs[0].src, recvs[0].dst, recvs[0].bytes), (0, 1, 64));
        assert!(recvs.iter().all(|r| r.wait_seconds >= 0.0));
        let waits = rec.rank_wait_seconds(2);
        assert_eq!(waits.len(), 2);
        assert!(waits.iter().all(|&w| w >= 0.0));
        // The sorted schedule view is deterministic.
        assert_eq!(
            rec.schedule(),
            vec![
                (5, Phase::Fill as u8, 7, 0, 1),
                (5, Phase::Fill as u8, 8, 1, 0)
            ]
        );
    }
}
