//! Seeded, deterministic fault injection for the distributed runtime.
//!
//! [`FaultyEndpoint`] wraps any [`Endpoint`] and perturbs its traffic
//! according to a [`FaultPlan`]: message delivery delays, payload
//! corruption (caught by the CRC seal in `msg.rs` and transparently
//! re-received), transient send/recv failures (retried by the comm
//! layer with bounded backoff), and a hard rank crash at a chosen
//! step/phase (survived via checkpoint-epoch rollback in
//! [`crate::sim::DistSim`]).
//!
//! **Determinism rule.** Every injection decision is a pure function of
//! `(plan.seed, rank, per-rank operation counter)` — never of wall
//! clock or thread interleaving. Each rank's transport operations are
//! program-ordered, so the same `(seed, plan)` replays the exact same
//! fault schedule: identical [`FaultStats`], identical recovery trace,
//! identical final state. Wall time only ever changes *when* a fault
//! lands, not *whether* it does.
//!
//! A corrupted delivery keeps the pristine payload stashed and
//! redelivers it on the retry (the in-process stand-in for a link-layer
//! retransmit), so corruption never changes physics — only counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::transport::{
    mem_transport_with_timeout, Endpoint, MemEndpoint, Phase, Tag, TransportError,
    TransportErrorKind,
};
use mrpic_core::telemetry::FaultStats;
use serde::{Deserialize, Serialize};

/// Phase selector for a crash point (serializable mirror of
/// [`Phase`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhasePick {
    Fill,
    Sum,
    Redist,
    Migrate,
}

impl PhasePick {
    pub fn matches(&self, phase: Phase) -> bool {
        matches!(
            (self, phase),
            (PhasePick::Fill, Phase::Fill)
                | (PhasePick::Sum, Phase::Sum)
                | (PhasePick::Redist, Phase::Redist)
                | (PhasePick::Migrate, Phase::Migrate)
        )
    }
}

/// Kill one rank at a chosen point: the rank dies at its first
/// transport operation at `step` or later (restricted to a specific
/// communication phase when `phase` is set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPoint {
    pub rank: usize,
    pub step: u64,
    #[serde(default)]
    pub phase: Option<PhasePick>,
}

fn default_delay_us() -> u64 {
    20
}
fn default_recv_timeout_ms() -> u64 {
    500
}

/// A seeded schedule of injected faults. Rates are per-mille (‰) per
/// transport operation, so the plan is integer-exact and reproducible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the deterministic decision stream.
    #[serde(default)]
    pub seed: u64,
    /// ‰ of receives whose delivery is delayed by `delay_us`.
    #[serde(default)]
    pub delay_per_mille: u32,
    /// Length of one injected delivery delay, microseconds.
    #[serde(default = "default_delay_us")]
    pub delay_us: u64,
    /// ‰ of receives whose payload is corrupted in flight (the pristine
    /// payload is redelivered on retry once the CRC check rejects it).
    #[serde(default)]
    pub corrupt_per_mille: u32,
    /// ‰ of send/recv operations that fail transiently (retryable).
    #[serde(default)]
    pub transient_per_mille: u32,
    /// Receive timeout of the underlying in-process transport,
    /// milliseconds — how long a rank waits before declaring a silent
    /// peer lost.
    #[serde(default = "default_recv_timeout_ms")]
    pub recv_timeout_ms: u64,
    /// Optional hard rank crash.
    #[serde(default)]
    pub crash: Option<CrashPoint>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            delay_per_mille: 0,
            delay_us: default_delay_us(),
            corrupt_per_mille: 0,
            transient_per_mille: 0,
            recv_timeout_ms: default_recv_timeout_ms(),
            crash: None,
        }
    }
}

impl FaultPlan {
    /// Transient-only chaos: delays, corruption, and retryable failures
    /// at rates that exercise every recovery path on a short run, but
    /// no rank crash — physics must stay bitwise identical.
    pub fn transient(seed: u64) -> Self {
        Self {
            seed,
            delay_per_mille: 20,
            delay_us: 20,
            corrupt_per_mille: 25,
            transient_per_mille: 25,
            ..Self::default()
        }
    }

    /// The CI chaos smoke plan (`mrpic_run --fault-seed N`): a sprinkle
    /// of every transient fault plus one hard crash of rank 1 at step
    /// 20 — a 2-rank, 40-step run exercises injection, retry, and full
    /// crash recovery.
    pub fn chaos_smoke(seed: u64) -> Self {
        Self {
            seed,
            delay_per_mille: 10,
            delay_us: 20,
            corrupt_per_mille: 8,
            transient_per_mille: 10,
            recv_timeout_ms: default_recv_timeout_ms(),
            crash: Some(CrashPoint {
                rank: 1,
                step: 20,
                phase: None,
            }),
        }
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// Bump one of the cached mrpic-trace injection counters; a no-op
/// (single relaxed load) while tracing is disabled.
macro_rules! count_injection {
    ($cell:ident, $name:literal) => {{
        if mrpic_trace::enabled() {
            static $cell: std::sync::OnceLock<&'static mrpic_trace::metrics::Counter> =
                std::sync::OnceLock::new();
            $cell.get_or_init(|| mrpic_trace::counter($name)).incr();
        }
    }};
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Shared state of one fault-injected transport: the plan, the current
/// step, which ranks are dead, and the injected-fault counters.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    step: AtomicU64,
    crash_fired: AtomicBool,
    dead: Mutex<Vec<bool>>,
    /// Per-step counters, drained into the telemetry by `take_stats`.
    stats: Mutex<FaultStats>,
    /// Lifetime counters, never reset.
    totals: Mutex<FaultStats>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, nranks: usize) -> Self {
        Self {
            plan,
            step: AtomicU64::new(0),
            crash_fired: AtomicBool::new(false),
            dead: Mutex::new(vec![false; nranks]),
            stats: Mutex::new(FaultStats::default()),
            totals: Mutex::new(FaultStats::default()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Ranks marked dead by an injected crash, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.dead
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .filter_map(|(r, &d)| d.then_some(r))
            .collect()
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead.lock().unwrap()[rank]
    }

    /// Snapshot of the injected-side counters since the last drain.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().unwrap()
    }

    /// Lifetime injected-side counters (never reset by the per-step
    /// telemetry drain).
    pub fn totals(&self) -> FaultStats {
        *self.totals.lock().unwrap()
    }

    /// Drain the injected-side counters.
    pub fn take_stats(&self) -> FaultStats {
        std::mem::take(&mut *self.stats.lock().unwrap())
    }

    fn bump(&self, f: impl Fn(&mut FaultStats)) {
        f(&mut self.stats.lock().unwrap());
        f(&mut self.totals.lock().unwrap());
    }

    /// Advance the step clock. A step-level crash (`phase: None`) fires
    /// *here*, on the driver thread before any rank thread of the step
    /// spawns: every rank then observes the dead set from its very first
    /// operation, so the survivors' abort points — and with them the
    /// fault counters — are a pure function of program order, not of
    /// thread timing.
    fn on_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
        let Some(cp) = &self.plan.crash else { return };
        if cp.phase.is_none() && step >= cp.step && !self.crash_fired.swap(true, Ordering::Relaxed)
        {
            self.dead.lock().unwrap()[cp.rank] = true;
            self.bump(|s| s.crashes += 1);
        }
    }

    /// Fire a *phase-targeted* crash if `rank` is at (or past) its crash
    /// point. Firing at the rank's first operation of the phase means
    /// peers may detect the loss via timeout rather than the dead set,
    /// so detection counters can vary with thread timing — recovery and
    /// final state stay deterministic regardless (rollback + replay).
    fn crash_due(&self, rank: usize, phase: Phase) -> bool {
        let Some(cp) = &self.plan.crash else {
            return false;
        };
        let Some(pick) = cp.phase else { return false };
        if cp.rank != rank
            || self.step.load(Ordering::Relaxed) < cp.step
            || !pick.matches(phase)
            || self.crash_fired.swap(true, Ordering::Relaxed)
        {
            return false;
        }
        self.dead.lock().unwrap()[rank] = true;
        self.bump(|s| s.crashes += 1);
        true
    }
}

/// Wraps any [`Endpoint`], injecting the faults of a shared
/// [`FaultInjector`]'s plan. Same shape as `RecordingEndpoint` — the
/// wrappers compose.
pub struct FaultyEndpoint<E: Endpoint> {
    inner: E,
    injector: Arc<FaultInjector>,
    /// Per-rank operation counter driving the decision stream.
    ops: u64,
    /// Pristine payloads awaiting redelivery after an injected
    /// corruption, per source rank.
    stash: Vec<Option<(Tag, Vec<u8>)>>,
}

/// Build an in-process transport whose traffic is perturbed by `plan`.
/// The returned [`FaultInjector`] reports injected-fault counters and
/// dead ranks.
pub fn faulty_mem_transport(
    nranks: usize,
    plan: FaultPlan,
) -> (Vec<FaultyEndpoint<MemEndpoint>>, Arc<FaultInjector>) {
    let timeout = Duration::from_millis(plan.recv_timeout_ms.max(1));
    let injector = Arc::new(FaultInjector::new(plan, nranks));
    let eps = mem_transport_with_timeout(nranks, timeout)
        .into_iter()
        .map(|inner| FaultyEndpoint {
            inner,
            injector: Arc::clone(&injector),
            ops: 0,
            stash: (0..nranks).map(|_| None).collect(),
        })
        .collect();
    (eps, injector)
}

impl<E: Endpoint> FaultyEndpoint<E> {
    /// Next value of the deterministic decision stream.
    fn draw(&mut self) -> u64 {
        let h = splitmix64(
            self.injector
                .plan
                .seed
                .wrapping_add((self.inner.rank() as u64).wrapping_mul(0xA24B_AED4_963E_E407))
                .wrapping_add(self.ops.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        self.ops += 1;
        h
    }

    fn err(&self, kind: TransportErrorKind, peer: usize, tag: Tag) -> TransportError {
        TransportError::new(
            kind,
            self.inner.rank(),
            peer,
            tag,
            self.injector.step.load(Ordering::Relaxed),
        )
    }

    /// Common entry checks for both directions: local crash firing,
    /// local already-dead, remote dead.
    fn gate(&mut self, peer: usize, tag: Tag) -> Result<(), TransportError> {
        let me = self.inner.rank();
        if self.injector.crash_due(me, tag.phase) || self.injector.is_dead(me) {
            return Err(self.err(TransportErrorKind::Crashed, peer, tag));
        }
        if self.injector.is_dead(peer) {
            self.injector.bump(|s| s.peer_losses_detected += 1);
            return Err(self.err(TransportErrorKind::PeerLost, peer, tag));
        }
        Ok(())
    }
}

impl<E: Endpoint> Endpoint for FaultyEndpoint<E> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) -> Result<(), TransportError> {
        self.gate(dst, tag)?;
        let h = self.draw();
        if h % 1000 < self.injector.plan.transient_per_mille as u64 {
            self.injector.bump(|s| s.transients_injected += 1);
            count_injection!(SEND_TRANSIENTS, "fault.transients_injected");
            return Err(self.err(TransportErrorKind::Transient, dst, tag));
        }
        self.inner.send(dst, tag, payload)
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError> {
        // A pristine payload stashed by an earlier injected corruption
        // is redelivered first, bypassing every fault roll — one
        // corruption per message, so retries always converge.
        if let Some((stag, payload)) = self.stash[src].take() {
            assert_eq!(stag, tag, "stashed redelivery desynchronized");
            return Ok(payload);
        }
        self.gate(src, tag)?;
        let plan = self.injector.plan.clone();
        let h = self.draw();
        if h % 1000 < plan.transient_per_mille as u64 {
            self.injector.bump(|s| s.transients_injected += 1);
            count_injection!(RECV_TRANSIENTS, "fault.transients_injected");
            return Err(self.err(TransportErrorKind::Transient, src, tag));
        }
        if (h >> 10) % 1000 < plan.delay_per_mille as u64 {
            self.injector.bump(|s| s.delays_injected += 1);
            count_injection!(DELAYS, "fault.delays_injected");
            let _delay_span =
                mrpic_trace::span!("fault_delay", self.inner.rank(), src, plan.delay_us);
            std::thread::sleep(Duration::from_micros(plan.delay_us));
        }
        let payload = match self.inner.recv(src, tag) {
            Ok(p) => p,
            // A timeout against a rank that died while we were blocked
            // is a peer loss, with the dead rank identified.
            Err(e) if e.kind == TransportErrorKind::Timeout && self.injector.is_dead(src) => {
                self.injector.bump(|s| s.peer_losses_detected += 1);
                return Err(self.err(TransportErrorKind::PeerLost, src, tag));
            }
            Err(e) => return Err(e),
        };
        if !payload.is_empty() && (h >> 20) % 1000 < plan.corrupt_per_mille as u64 {
            self.injector.bump(|s| s.corruptions_injected += 1);
            count_injection!(CORRUPTIONS, "fault.corruptions_injected");
            let mut corrupted = payload.clone();
            let pos = (h >> 30) as usize % corrupted.len();
            corrupted[pos] ^= 0x5A;
            self.stash[src] = Some((tag, payload));
            return Ok(corrupted);
        }
        Ok(payload)
    }

    fn set_step(&mut self, step: u64) {
        self.injector.on_step(step);
        self.inner.set_step(step);
    }

    fn take_wire_counters(&mut self) -> (u64, u64) {
        self.inner.take_wire_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Tag = Tag {
        phase: Phase::Fill,
        seq: 0,
    };

    #[test]
    fn decision_stream_is_deterministic() {
        let plan = FaultPlan::transient(42);
        let draw_seq = |n: usize| -> Vec<u64> {
            let (mut eps, _) = faulty_mem_transport(2, plan.clone());
            (0..n).map(|_| eps[0].draw()).collect()
        };
        assert_eq!(draw_seq(64), draw_seq(64));
        // Different ranks see different streams.
        let (mut eps, _) = faulty_mem_transport(2, plan);
        let a = eps[0].draw();
        let b = eps[1].draw();
        assert_ne!(a, b);
    }

    #[test]
    fn corruption_is_detected_and_pristine_redelivered() {
        // Force corruption on every receive.
        let plan = FaultPlan {
            seed: 7,
            corrupt_per_mille: 1000,
            ..FaultPlan::default()
        };
        let (mut eps, inj) = faulty_mem_transport(2, plan);
        let (a, b) = eps.split_at_mut(1);
        let mut frame = vec![1, 2, 3, 4, 5, 6, 7, 8];
        crate::msg::seal(&mut frame);
        a[0].send(1, T, frame.clone()).unwrap();
        let mut first = b[0].recv(0, T).unwrap();
        assert!(crate::msg::unseal(&mut first).is_err(), "must be corrupted");
        let mut second = b[0].recv(0, T).unwrap();
        crate::msg::unseal(&mut second).unwrap();
        assert_eq!(second, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(inj.stats().corruptions_injected, 1);
    }

    #[test]
    fn transient_send_does_not_deliver_and_retry_succeeds() {
        // First op per endpoint rolls transient with probability ~1.
        let plan = FaultPlan {
            seed: 1,
            transient_per_mille: 1000,
            ..FaultPlan::default()
        };
        let (mut eps, inj) = faulty_mem_transport(2, plan);
        let e = eps[0].send(1, T, vec![9]).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Transient);
        assert!(inj.stats().transients_injected >= 1);
    }

    #[test]
    fn crash_point_kills_rank_and_peers_detect_loss() {
        let plan = FaultPlan {
            seed: 3,
            crash: Some(CrashPoint {
                rank: 1,
                step: 5,
                phase: Some(PhasePick::Sum),
            }),
            recv_timeout_ms: 20,
            ..FaultPlan::default()
        };
        let (mut eps, inj) = faulty_mem_transport(2, plan);
        for ep in &mut eps {
            ep.set_step(5);
        }
        // Fill phase at the crash step: not the selected phase, no crash.
        let fill = Tag {
            phase: Phase::Fill,
            seq: 1,
        };
        eps[1].send(0, fill, vec![]).unwrap();
        // Sum phase: rank 1 dies at its first op.
        let sum = Tag {
            phase: Phase::Sum,
            seq: 2,
        };
        let e = eps[1].send(0, sum, vec![]).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Crashed);
        assert_eq!(inj.dead_ranks(), vec![1]);
        // Rank 0 sees the loss immediately (dead-set), not via timeout.
        let e = eps[0].recv(1, sum).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::PeerLost);
        assert_eq!(e.peer, 1);
        let stats = inj.stats();
        assert_eq!(stats.crashes, 1);
        assert!(stats.peer_losses_detected >= 1);
        // The dead rank stays dead.
        let e = eps[1].send(0, sum, vec![]).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Crashed);
    }

    #[test]
    fn step_level_crash_fires_on_the_step_clock() {
        let plan = FaultPlan {
            seed: 2,
            crash: Some(CrashPoint {
                rank: 0,
                step: 3,
                phase: None,
            }),
            ..FaultPlan::default()
        };
        let (mut eps, inj) = faulty_mem_transport(2, plan);
        eps[0].set_step(2);
        assert!(inj.dead_ranks().is_empty());
        // Any endpoint advancing the shared clock to the crash step fires
        // it — before a single message moves.
        eps[1].set_step(3);
        assert_eq!(inj.dead_ranks(), vec![0]);
        let e = eps[0].send(1, T, vec![]).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Crashed);
        let e = eps[1].recv(0, T).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::PeerLost);
        assert_eq!(inj.stats().crashes, 1);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::chaos_smoke(42);
        let s = serde_json::to_string(&plan).unwrap();
        let back = FaultPlan::from_json(&s).unwrap();
        assert_eq!(back, plan);
        // Sparse plans pick up defaults.
        let sparse = FaultPlan::from_json("{\"seed\": 9, \"corrupt_per_mille\": 5}").unwrap();
        assert_eq!(sparse.seed, 9);
        assert_eq!(sparse.corrupt_per_mille, 5);
        assert_eq!(sparse.recv_timeout_ms, 500);
        assert!(sparse.crash.is_none());
    }
}
