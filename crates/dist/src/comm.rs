//! Distributed [`StepComm`] backend: rank threads over a transport.
//!
//! [`DistComm`] executes the step loop's three communication patterns
//! across N ranks, each running in its own thread for the duration of a
//! communication phase and owning the shard of boxes its
//! [`DistributionMapping`] assigns to it:
//!
//! 1. **Guard exchange** — the array's [`ExchangePlan`] is partitioned
//!    into per-rank pack/apply halves ([`PartitionedPlan`], cached per
//!    layout generation and mapping version). Off-rank plan entries are
//!    serialized into framed messages; rank-local entries short-circuit
//!    through an in-thread stash. Each rank applies all entries targeting
//!    its boxes in ascending *global plan index*, which reproduces the
//!    single-rank plan-order application bitwise (see DESIGN.md §9).
//! 2. **Particle redistribution** — each rank scans its owned boxes with
//!    the same `scan_box_moves` the serial path uses, ships off-rank
//!    particles as messages, and merges incoming streams by ascending
//!    source box so per-buffer insertion order matches the serial path.
//! 3. **Box migration** — adopting a rebalance serializes the fab data
//!    and particle tiles of every box whose owner changed, moves the
//!    bytes through the transport, and restores them on the new owner
//!    (the source copies are zeroed, so a lost message is loud).
//!
//! No rank thread ever touches another rank's fabs or particle buffers:
//! packing reads only the packing rank's boxes and applying writes only
//! the destination rank's boxes, so the threads need no barrier beyond
//! the messages themselves (exactly one per ordered rank pair and
//! exchange, empty frames included).
//!
//! **Fault handling.** Every frame is CRC-sealed (`msg::seal`); a frame
//! that fails its check on receive is dropped and re-received, and
//! transient transport failures are retried with bounded backoff —
//! both invisible to physics, visible in [`FaultStats`]. An
//! unrecoverable failure (rank crash, peer loss, timeout, retry budget
//! exhausted) is recorded as a [`RankLoss`] instead of panicking; the
//! remaining communication phases of the step then *drain* (no-op) so
//! the step loop reaches a safe point, and [`crate::sim::DistSim`]
//! rolls the run back to its last checkpoint epoch and replays without
//! the dead rank (DESIGN.md §10).

use std::sync::Arc;

use crate::faults::FaultInjector;
use crate::msg::{put_f64s, put_u32, seal, unseal, Reader};
use crate::transport::{Endpoint, Phase, Tag, TransportError, TransportErrorKind};
use mrpic_amr::fabarray::{blend_region_from_buf, pack_region_into};
use mrpic_amr::{
    BoxArray, CommStats, DistributionMapping, ExchangePlan, Fab, FabArray, IntVect,
    PartitionedPlan, Periodicity, Stagger,
};
use mrpic_core::exchange::{RankStepComm, StepComm};
use mrpic_core::particles::{scan_box_moves, ParticleBuf, ParticleContainer, ParticleTuple};
use mrpic_core::telemetry::FaultStats;
use mrpic_field::fieldset::{FieldSet, GridGeom};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Fill,
    Sum,
}

#[derive(Clone, PartialEq)]
struct PlanKey {
    kind: u8,
    stagger: Stagger,
    ngrow: IntVect,
    period: Periodicity,
    generation: u64,
    dm_version: u64,
}

/// An unrecoverable rank failure observed by a communication phase.
#[derive(Clone, Copy, Debug)]
pub struct RankLoss {
    /// The rank judged dead (crashed, unreachable, or retry-exhausted).
    pub dead_rank: usize,
    /// Step during which the loss was detected.
    pub step: u64,
    /// Phase that detected it.
    pub phase: Phase,
    /// The first transport error that condemned the rank.
    pub error: TransportError,
}

/// Per-operation retry budget for transient failures and corrupt frames.
const MAX_ATTEMPTS: u32 = 10;

fn backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_micros(40u64 << attempt.min(8)));
}

/// Cached mrpic-trace metric handles; the steady-state cost per record
/// is one relaxed atomic add (and nothing at all when tracing is off —
/// every site gates on `mrpic_trace::enabled()`).
fn msg_bytes_hist() -> &'static mrpic_trace::metrics::Histogram {
    static H: std::sync::OnceLock<&'static mrpic_trace::metrics::Histogram> =
        std::sync::OnceLock::new();
    H.get_or_init(|| mrpic_trace::histogram("dist.msg_bytes"))
}

fn recv_wait_hist() -> &'static mrpic_trace::metrics::Histogram {
    static H: std::sync::OnceLock<&'static mrpic_trace::metrics::Histogram> =
        std::sync::OnceLock::new();
    H.get_or_init(|| mrpic_trace::histogram("dist.recv_wait_ns"))
}

fn retries_counter() -> &'static mrpic_trace::metrics::Counter {
    static C: std::sync::OnceLock<&'static mrpic_trace::metrics::Counter> =
        std::sync::OnceLock::new();
    C.get_or_init(|| mrpic_trace::counter("dist.retries"))
}

/// Seal and send one frame, retrying transient failures with bounded
/// backoff. Byte/message accounting covers the sealed frame once.
fn send_framed(
    ep: &mut dyn Endpoint,
    dst: usize,
    tag: Tag,
    mut frame: Vec<u8>,
    rec: &mut RankStepComm,
    faults: &mut FaultStats,
) -> Result<(), TransportError> {
    seal(&mut frame);
    let _send_span = mrpic_trace::span!("send", ep.rank(), dst, frame.len());
    if mrpic_trace::enabled() {
        msg_bytes_hist().record(frame.len() as u64);
    }
    rec.sent_bytes += frame.len() as u64;
    rec.sent_messages += 1;
    let mut attempt = 0;
    loop {
        match ep.send(dst, tag, frame.clone()) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_transient() && attempt + 1 < MAX_ATTEMPTS => {
                attempt += 1;
                faults.retries += 1;
                if mrpic_trace::enabled() {
                    retries_counter().incr();
                }
                backoff(attempt);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Receive and unseal one frame. Transient failures are retried with
/// bounded backoff; a frame failing its CRC is counted, dropped, and
/// re-received (a faulty transport redelivers the pristine payload).
fn recv_framed(
    ep: &mut dyn Endpoint,
    src: usize,
    tag: Tag,
    step: u64,
    rec: &mut RankStepComm,
    faults: &mut FaultStats,
) -> Result<Vec<u8>, TransportError> {
    let _recv_span = mrpic_trace::span!("recv", ep.rank(), src);
    let mut attempt = 0;
    loop {
        // The blocked time inside `ep.recv` is the quantity the load
        // balancer wants priced: spanned separately from the unseal work
        // and recorded into the recv-wait histogram.
        let wait_span = mrpic_trace::span!("recv_wait", ep.rank(), src);
        let t_wait = std::time::Instant::now();
        let got = ep.recv(src, tag);
        drop(wait_span);
        // Always charged to the rank record (the imbalance metric
        // subtracts it from busy time); the histogram is trace-only.
        rec.recv_wait_seconds += t_wait.elapsed().as_secs_f64();
        if mrpic_trace::enabled() {
            recv_wait_hist().record(t_wait.elapsed().as_nanos() as u64);
        }
        match got {
            Ok(mut frame) => {
                let sealed_len = frame.len() as u64;
                if unseal(&mut frame).is_ok() {
                    rec.recv_bytes += sealed_len;
                    rec.recv_messages += 1;
                    return Ok(frame);
                }
                faults.corruptions_detected += 1;
                if attempt + 1 >= MAX_ATTEMPTS {
                    return Err(TransportError::new(
                        TransportErrorKind::Corrupt,
                        ep.rank(),
                        src,
                        tag,
                        step,
                    ));
                }
                attempt += 1;
                faults.retries += 1;
                if mrpic_trace::enabled() {
                    retries_counter().incr();
                }
            }
            Err(e) if e.is_transient() && attempt + 1 < MAX_ATTEMPTS => {
                attempt += 1;
                faults.retries += 1;
                if mrpic_trace::enabled() {
                    retries_counter().incr();
                }
                backoff(attempt);
            }
            Err(e) => return Err(e),
        }
    }
}

/// What one rank thread brings back from a communication phase.
struct RankOut {
    rec: RankStepComm,
    faults: FaultStats,
    err: Option<TransportError>,
    deleted: usize,
}

/// Multi-rank communication backend over boxed [`Endpoint`]s.
pub struct DistComm {
    eps: Vec<Box<dyn Endpoint>>,
    dm: DistributionMapping,
    dm_version: u64,
    plans: Vec<(PlanKey, Arc<PartitionedPlan>)>,
    records: Vec<RankStepComm>,
    seq: u32,
    step: u64,
    injector: Option<Arc<FaultInjector>>,
    stats: FaultStats,
    loss: Option<RankLoss>,
}

fn fresh_records(nranks: usize) -> Vec<RankStepComm> {
    (0..nranks)
        .map(|rank| RankStepComm {
            rank,
            ..Default::default()
        })
        .collect()
}

impl DistComm {
    /// One endpoint per rank, rank i at index i; `dm` must use the same
    /// rank count.
    pub fn new(eps: Vec<Box<dyn Endpoint>>, dm: DistributionMapping) -> Self {
        assert!(!eps.is_empty(), "need at least one endpoint");
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.rank(), i, "endpoints must be ordered by rank");
            assert_eq!(ep.nranks(), eps.len());
        }
        assert_eq!(dm.nranks(), eps.len());
        let n = eps.len();
        Self {
            eps,
            dm,
            dm_version: 0,
            plans: Vec::new(),
            records: fresh_records(n),
            seq: 0,
            step: 0,
            injector: None,
            stats: FaultStats::default(),
            loss: None,
        }
    }

    pub fn nranks(&self) -> usize {
        self.eps.len()
    }

    pub fn mapping(&self) -> &DistributionMapping {
        &self.dm
    }

    /// Attach the shared state of a fault-injected transport so its
    /// injected-side counters drain into the step telemetry.
    pub fn attach_injector(&mut self, inj: Arc<FaultInjector>) {
        self.injector = Some(inj);
    }

    /// Take the pending unrecoverable rank loss, if any. While a loss is
    /// pending, every communication phase drains (no-ops) so the step
    /// loop reaches a safe point for rollback.
    pub fn take_loss(&mut self) -> Option<RankLoss> {
        self.loss.take()
    }

    /// Count a completed crash recovery (rollback + `replayed` replayed
    /// steps) into the next telemetry drain.
    pub fn note_recovery(&mut self, replayed: u64) {
        self.stats.recoveries += 1;
        self.stats.replayed_steps += replayed;
    }

    /// Fold a phase's rank results into the step accounting and, on the
    /// first error, condemn a rank: an explicit `Crashed` names itself,
    /// a `PeerLost`/`Timeout` names its peer, anything else (transient
    /// budget exhausted, persistent corruption, desync) names the
    /// reporting rank. Thread-join order is rank order, so the choice is
    /// deterministic.
    fn absorb(&mut self, outs: Vec<RankOut>, phase: Phase) -> usize {
        let mut deleted = 0;
        let mut errs: Vec<TransportError> = Vec::new();
        for o in outs {
            deleted += o.deleted;
            self.records[o.rec.rank].merge(&o.rec);
            self.stats.merge(&o.faults);
            if let Some(e) = o.err {
                errs.push(e);
            }
        }
        if self.loss.is_none() && !errs.is_empty() {
            let pick = |kind: TransportErrorKind| errs.iter().find(|e| e.kind == kind).copied();
            let (error, dead_rank) = if let Some(e) = pick(TransportErrorKind::Crashed) {
                (e, e.rank)
            } else if let Some(e) = pick(TransportErrorKind::PeerLost) {
                (e, e.peer)
            } else if let Some(e) = pick(TransportErrorKind::Timeout) {
                (e, e.peer)
            } else {
                (errs[0], errs[0].rank)
            };
            self.loss = Some(RankLoss {
                dead_rank,
                step: self.step,
                phase,
                error,
            });
        }
        deleted
    }

    fn plan_for(
        &mut self,
        kind: Kind,
        a: &FabArray,
        period: &Periodicity,
    ) -> (Arc<PartitionedPlan>, bool) {
        let key = PlanKey {
            kind: kind as u8,
            stagger: a.stagger(),
            ngrow: a.ngrow(),
            period: *period,
            generation: a.generation(),
            dm_version: self.dm_version,
        };
        if let Some((_, p)) = self.plans.iter().find(|(k, _)| *k == key) {
            return (Arc::clone(p), false);
        }
        let plan = match kind {
            Kind::Fill => ExchangePlan::fill(a.boxarray(), a.stagger(), a.ngrow(), period),
            Kind::Sum => ExchangePlan::sum(a.boxarray(), a.stagger(), a.ngrow(), period),
        };
        let pp = Arc::new(PartitionedPlan::new(
            &plan,
            a.boxarray(),
            a.stagger(),
            a.ngrow(),
            &self.dm,
        ));
        if self.plans.len() >= 64 {
            self.plans.remove(0);
        }
        self.plans.push((key, Arc::clone(&pp)));
        (pp, true)
    }

    /// Run one guard exchange over all arrays of the group, one rank per
    /// thread. `arrays` are exchanged in order with consecutive message
    /// sequence numbers.
    fn exchange_group(&mut self, arrays: &mut [&mut FabArray], period: &Periodicity, kind: Kind) {
        let nranks = self.nranks();
        let t0 = std::time::Instant::now();
        let mut plans = Vec::with_capacity(arrays.len());
        let mut built = Vec::with_capacity(arrays.len());
        for a in arrays.iter() {
            let (p, b) = self.plan_for(kind, a, period);
            plans.push(p);
            built.push(b);
        }
        let ncomps: Vec<usize> = arrays.iter().map(|a| a.ncomp()).collect();
        let narrays = arrays.len();
        // Shard every array's fabs by owning rank (ascending box id).
        let mut shards: Vec<Vec<Vec<(usize, &mut Fab)>>> = (0..nranks)
            .map(|_| Vec::with_capacity(arrays.len()))
            .collect();
        for a in arrays.iter_mut() {
            let mut per_rank: Vec<Vec<(usize, &mut Fab)>> =
                (0..nranks).map(|_| Vec::new()).collect();
            for (bi, fab) in a.fabs_mut().iter_mut().enumerate() {
                per_rank[self.dm.owner(bi)].push((bi, fab));
            }
            for (bucket, shard) in per_rank.into_iter().zip(shards.iter_mut()) {
                shard.push(bucket);
            }
        }
        let seq0 = self.seq;
        self.seq = self.seq.wrapping_add(narrays as u32);
        let phase = match kind {
            Kind::Fill => Phase::Fill,
            Kind::Sum => Phase::Sum,
        };
        let step = self.step;
        let plans_ref = &plans;
        let ncomps_ref = &ncomps;
        let outs: Vec<RankOut> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .zip(self.eps.iter_mut())
                .enumerate()
                .map(|(r, (shard, ep))| {
                    s.spawn(move || {
                        rank_exchange(
                            r, nranks, shard, ep, plans_ref, ncomps_ref, phase, seq0, kind, step,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        self.absorb(outs, phase);
        // Keep the arrays' own CommStats accounting identical to the
        // single-rank executors (unclipped points, cross-box messages);
        // wall time of the whole group lands on its first array.
        let wall = t0.elapsed().as_secs_f64();
        for (i, a) in arrays.iter_mut().enumerate() {
            a.record_exchange(&CommStats {
                bytes: plans[i].total_points as u64 * 8 * ncomps[i] as u64,
                messages: plans[i].cross_box_items,
                exchanges: 1,
                plan_builds: u64::from(built[i]),
                seconds: if i == 0 { wall } else { 0.0 },
            });
        }
    }
}

fn find_fab<'s>(shard: &'s mut [(usize, &mut Fab)], bi: usize) -> &'s mut Fab {
    let idx = shard
        .binary_search_by_key(&bi, |(b, _)| *b)
        .expect("box not in rank shard");
    shard[idx].1
}

/// One rank's half of an exchange group: pack own entries (ascending
/// global index), send one frame per peer and array, receive one frame
/// per peer and array, then apply all entries targeting own boxes in
/// ascending global index — reproducing the serial plan order. A
/// non-retryable transport error aborts the rank's remaining work for
/// the whole group; the driver records the loss and drains the step.
#[allow(clippy::too_many_arguments)]
fn rank_exchange(
    r: usize,
    nranks: usize,
    mut shard: Vec<Vec<(usize, &mut Fab)>>,
    ep: &mut Box<dyn Endpoint>,
    plans: &[Arc<PartitionedPlan>],
    ncomps: &[usize],
    phase: Phase,
    seq0: u32,
    kind: Kind,
    step: u64,
) -> RankOut {
    let t0 = std::time::Instant::now();
    let _phase_span = mrpic_trace::span!(
        match kind {
            Kind::Fill => "rank_fill",
            Kind::Sum => "rank_sum",
        },
        r
    );
    let mut rec = RankStepComm {
        rank: r,
        ..Default::default()
    };
    let mut faults = FaultStats::default();
    let mut scratch: Vec<f64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut run = || -> Result<(), TransportError> {
        for (i, pp) in plans.iter().enumerate() {
            let rp = &pp.ranks[r];
            let ncomp = ncomps[i];
            let tag = Tag {
                phase,
                seq: seq0.wrapping_add(i as u32),
            };
            // Pack. For `Sum` this must complete before any apply so every
            // payload holds pre-sum values — the same two-phase structure as
            // the serial `execute_sum`. (Safe for `Fill` too: fills read
            // valid regions and write guard regions, which never alias.)
            let mut local: std::collections::VecDeque<(usize, Vec<f64>)> = Default::default();
            let mut bodies: Vec<Vec<u8>> = (0..nranks).map(|_| Vec::new()).collect();
            let mut counts: Vec<u32> = vec![0; nranks];
            for e in &rp.pack {
                let Some(clip) = e.clip else { continue };
                let npts = clip.num_cells() as usize;
                scratch.clear();
                let src = find_fab(&mut shard[i], e.item.src);
                for c in 0..ncomp {
                    pack_region_into(src, c, &clip, &mut scratch);
                }
                debug_assert_eq!(scratch.len(), npts * ncomp);
                if e.dst_rank == r {
                    local.push_back((e.index, scratch.clone()));
                } else {
                    let body = &mut bodies[e.dst_rank];
                    put_u32(body, e.index as u32);
                    put_u32(body, scratch.len() as u32);
                    put_f64s(body, &scratch);
                    counts[e.dst_rank] += 1;
                }
            }
            for (d, body) in bodies.into_iter().enumerate() {
                if d == r {
                    continue;
                }
                let mut frame = Vec::with_capacity(4 + body.len());
                put_u32(&mut frame, counts[d]);
                frame.extend_from_slice(&body);
                send_framed(ep.as_mut(), d, tag, frame, &mut rec, &mut faults)?;
            }
            // Receive one frame from every peer (ascending rank) — doubles
            // as the exchange barrier.
            let mut frames: Vec<Option<Vec<u8>>> = (0..nranks).map(|_| None).collect();
            for (src, slot) in frames.iter_mut().enumerate() {
                if src == r {
                    continue;
                }
                *slot = Some(recv_framed(
                    ep.as_mut(),
                    src,
                    tag,
                    step,
                    &mut rec,
                    &mut faults,
                )?);
            }
            let mut readers: Vec<Option<Reader>> = frames
                .iter()
                .map(|o| {
                    o.as_deref().map(|f| {
                        let mut rd = Reader::new(f);
                        let _count = rd.u32();
                        rd
                    })
                })
                .collect();
            // Apply in ascending global plan index, merging the local stash
            // with the per-peer streams (each already ascending).
            for e in &rp.apply {
                let Some(clip) = e.clip else { continue };
                let npts = clip.num_cells() as usize;
                if e.src_rank == r {
                    let (idx, v) = local.pop_front().expect("local stream underrun");
                    assert_eq!(idx, e.index, "local apply stream desynchronized");
                    vals = v;
                } else {
                    let rd = readers[e.src_rank].as_mut().unwrap();
                    let idx = rd.u32() as usize;
                    assert_eq!(idx, e.index, "remote apply stream desynchronized");
                    let n = rd.u32() as usize;
                    rd.f64s_into(n, &mut vals);
                }
                debug_assert_eq!(vals.len(), npts * ncomp);
                let dst = find_fab(&mut shard[i], e.item.dst);
                for c in 0..ncomp {
                    let seg = &vals[c * npts..(c + 1) * npts];
                    match kind {
                        Kind::Fill => {
                            blend_region_from_buf(dst, c, &clip, e.item.shift, seg, |_, s| s)
                        }
                        Kind::Sum => {
                            blend_region_from_buf(dst, c, &clip, e.item.shift, seg, |d2, s| d2 + s)
                        }
                    }
                }
            }
            debug_assert!(local.is_empty(), "unapplied local entries");
            debug_assert!(
                readers.iter_mut().flatten().all(|rd| rd.is_empty()),
                "unapplied remote entries"
            );
        }
        Ok(())
    };
    let err = run().err();
    rec.exchange_seconds = t0.elapsed().as_secs_f64();
    RankOut {
        rec,
        faults,
        err,
        deleted: 0,
    }
}

impl StepComm for DistComm {
    fn fill_group(&mut self, arrays: &mut [&mut FabArray], period: &Periodicity) {
        if self.loss.is_some() {
            return;
        }
        self.exchange_group(arrays, period, Kind::Fill);
    }

    fn sum_group(&mut self, arrays: &mut [&mut FabArray], period: &Periodicity) {
        if self.loss.is_some() {
            return;
        }
        self.exchange_group(arrays, period, Kind::Sum);
    }

    fn redistribute(
        &mut self,
        pc: &mut ParticleContainer,
        ba: &BoxArray,
        geom: &GridGeom,
        period: &Periodicity,
    ) -> usize {
        if self.loss.is_some() {
            return 0;
        }
        let nranks = self.nranks();
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let tag = Tag {
            phase: Phase::Redist,
            seq,
        };
        let step = self.step;
        let dm = &self.dm;
        let mut shards: Vec<Vec<(usize, &mut ParticleBuf)>> =
            (0..nranks).map(|_| Vec::new()).collect();
        for (bi, buf) in pc.bufs.iter_mut().enumerate() {
            shards[dm.owner(bi)].push((bi, buf));
        }
        let outs: Vec<RankOut> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .zip(self.eps.iter_mut())
                .enumerate()
                .map(|(r, (shard, ep))| {
                    s.spawn(move || {
                        rank_redistribute(r, nranks, shard, ep, dm, ba, geom, period, tag, step)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        self.absorb(outs, Phase::Redist)
    }

    fn adopt_mapping(
        &mut self,
        prev: &DistributionMapping,
        next: &DistributionMapping,
        fs: &mut FieldSet,
        parts: &mut [ParticleContainer],
    ) {
        if self.loss.is_some() {
            return;
        }
        if let Err(e) = self.migrate(prev, next, fs, parts) {
            let dead_rank = match e.kind {
                TransportErrorKind::Crashed => e.rank,
                TransportErrorKind::PeerLost | TransportErrorKind::Timeout => e.peer,
                _ => e.rank,
            };
            self.loss = Some(RankLoss {
                dead_rank,
                step: self.step,
                phase: Phase::Migrate,
                error: e,
            });
        }
    }

    fn begin_step(&mut self, istep: u64) {
        self.step = istep;
        for ep in &mut self.eps {
            ep.set_step(istep);
        }
    }

    fn note_box_seconds(&mut self, box_seconds: &[f64]) {
        for (bi, s) in box_seconds.iter().enumerate() {
            self.records[self.dm.owner(bi)].particle_seconds += s;
        }
    }

    fn take_rank_records(&mut self) -> Vec<RankStepComm> {
        let n = self.nranks();
        // Wire counters accumulate inside the endpoints (only a socket
        // backend produces any); drain them into the owning rank's
        // record once per telemetry cycle.
        for (i, ep) in self.eps.iter_mut().enumerate() {
            let (bytes, flushes) = ep.take_wire_counters();
            self.records[i].wire_bytes += bytes;
            self.records[i].wire_flushes += flushes;
        }
        std::mem::replace(&mut self.records, fresh_records(n))
    }

    fn take_fault_stats(&mut self) -> Option<FaultStats> {
        let mut s = std::mem::take(&mut self.stats);
        if let Some(inj) = &self.injector {
            s.merge(&inj.take_stats());
        }
        (self.injector.is_some() || !s.is_empty()).then_some(s)
    }
}

/// One rank's redistribution: scan owned boxes in ascending box order
/// with the shared `scan_box_moves`, ship off-rank movers, then merge
/// local and received movers by ascending *source* box (each stream is
/// already in source order) so every destination buffer sees the exact
/// insertion order of the serial path.
#[allow(clippy::too_many_arguments)]
fn rank_redistribute(
    r: usize,
    nranks: usize,
    mut shard: Vec<(usize, &mut ParticleBuf)>,
    ep: &mut Box<dyn Endpoint>,
    dm: &DistributionMapping,
    ba: &BoxArray,
    geom: &GridGeom,
    period: &Periodicity,
    tag: Tag,
    step: u64,
) -> RankOut {
    let t0 = std::time::Instant::now();
    let _phase_span = mrpic_trace::span!("rank_redist", r);
    let mut rec = RankStepComm {
        rank: r,
        ..Default::default()
    };
    let mut faults = FaultStats::default();
    let mut deleted = 0usize;
    let mut run = || -> Result<(), TransportError> {
        // (src box, dst box, particle), in scan order per source box.
        let mut local: Vec<(usize, usize, ParticleTuple)> = Vec::new();
        let mut bodies: Vec<Vec<u8>> = (0..nranks).map(|_| Vec::new()).collect();
        let mut counts: Vec<u32> = vec![0; nranks];
        for (bi, buf) in shard.iter_mut() {
            let bi = *bi;
            let my_box = ba.get(bi);
            deleted += scan_box_moves(buf, &my_box, ba, geom, period, |owner, p| {
                let dr = dm.owner(owner);
                if dr == r {
                    local.push((bi, owner, p));
                } else {
                    let body = &mut bodies[dr];
                    put_u32(body, bi as u32);
                    put_u32(body, owner as u32);
                    put_f64s(body, &[p.0, p.1, p.2, p.3, p.4, p.5, p.6]);
                    counts[dr] += 1;
                    rec.migrated_out += 1;
                }
            });
        }
        for (d, body) in bodies.into_iter().enumerate() {
            if d == r {
                continue;
            }
            let mut frame = Vec::with_capacity(4 + body.len());
            put_u32(&mut frame, counts[d]);
            frame.extend_from_slice(&body);
            send_framed(ep.as_mut(), d, tag, frame, &mut rec, &mut faults)?;
        }
        // Collect incoming movers; every stream is ascending in source box,
        // and a source box lives in exactly one stream, so a stable sort by
        // source box merges them into the serial insertion order.
        let mut movers = local;
        for src in 0..nranks {
            if src == r {
                continue;
            }
            let frame = recv_framed(ep.as_mut(), src, tag, step, &mut rec, &mut faults)?;
            let mut rd = Reader::new(&frame);
            let n = rd.u32() as usize;
            for _ in 0..n {
                let sbi = rd.u32() as usize;
                let dbi = rd.u32() as usize;
                let p = (
                    rd.f64(),
                    rd.f64(),
                    rd.f64(),
                    rd.f64(),
                    rd.f64(),
                    rd.f64(),
                    rd.f64(),
                );
                movers.push((sbi, dbi, p));
            }
            assert!(rd.is_empty(), "trailing bytes in redistribution frame");
        }
        movers.sort_by_key(|(sbi, _, _)| *sbi);
        for (_, dbi, p) in movers {
            let idx = shard
                .binary_search_by_key(&dbi, |(b, _)| *b)
                .expect("mover routed to unowned box");
            shard[idx].1.push_tuple(p);
        }
        Ok(())
    };
    let err = run().err();
    rec.exchange_seconds = t0.elapsed().as_secs_f64();
    RankOut {
        rec,
        faults,
        err,
        deleted,
    }
}

impl DistComm {
    /// Physically migrate every box whose owner changed: serialize its
    /// nine fab payloads and per-species particle tiles, move the bytes
    /// through the transport, zero/clear the source copies, and restore
    /// on the receiving rank. Orchestrated serially (migration is rare
    /// and bulk); the bytes still cross the transport so the recording
    /// backend prices it and a dropped message corrupts state loudly.
    fn migrate(
        &mut self,
        prev: &DistributionMapping,
        next: &DistributionMapping,
        fs: &mut FieldSet,
        parts: &mut [ParticleContainer],
    ) -> Result<(), TransportError> {
        let _migrate_span = mrpic_trace::span!("migrate");
        let nranks = self.nranks();
        assert_eq!(prev.nranks(), nranks);
        assert_eq!(next.nranks(), nranks);
        let nboxes = fs.e[0].nfabs();
        let tag = Tag {
            phase: Phase::Migrate,
            seq: self.seq,
        };
        self.seq = self.seq.wrapping_add(1);
        let step = self.step;
        // Group migrating boxes by ordered (src, dst) rank pair.
        let mut pairs: std::collections::BTreeMap<(usize, usize), Vec<usize>> = Default::default();
        for bi in 0..nboxes {
            let (s, d) = (prev.owner(bi), next.owner(bi));
            if s != d {
                pairs.entry((s, d)).or_default().push(bi);
            }
        }
        for (&(s, d), boxes) in &pairs {
            let mut frame = Vec::new();
            put_u32(&mut frame, boxes.len() as u32);
            for &bi in boxes {
                put_u32(&mut frame, bi as u32);
                for a in nine(fs) {
                    let raw = a.fab(bi).raw();
                    put_u32(&mut frame, raw.len() as u32);
                    put_f64s(&mut frame, raw);
                }
                for pc in parts.iter() {
                    let buf = &pc.bufs[bi];
                    put_u32(&mut frame, buf.len() as u32);
                    for i in 0..buf.len() {
                        put_f64s(
                            &mut frame,
                            &[
                                buf.x[i], buf.y[i], buf.z[i], buf.ux[i], buf.uy[i], buf.uz[i],
                                buf.w[i],
                            ],
                        );
                    }
                    self.records[s].migrated_out += buf.len() as u64;
                }
            }
            send_framed(
                self.eps[s].as_mut(),
                d,
                tag,
                frame,
                &mut self.records[s],
                &mut self.stats,
            )?;
            // The sender's copies are gone: zero the fabs and clear the
            // tiles so only the transported bytes can restore them.
            for &bi in boxes {
                for a in nine(fs) {
                    a.fab_mut(bi).raw_mut().fill(0.0);
                }
                for pc in parts.iter_mut() {
                    pc.bufs[bi] = ParticleBuf::default();
                }
            }
        }
        for (&(s, d), boxes) in &pairs {
            let frame = recv_framed(
                self.eps[d].as_mut(),
                s,
                tag,
                step,
                &mut self.records[d],
                &mut self.stats,
            )?;
            let mut rd = Reader::new(&frame);
            let n = rd.u32() as usize;
            assert_eq!(n, boxes.len());
            let mut vals: Vec<f64> = Vec::new();
            for &bi in boxes {
                assert_eq!(rd.u32() as usize, bi, "migration frame desynchronized");
                for a in nine(fs) {
                    let len = rd.u32() as usize;
                    let raw = a.fab_mut(bi).raw_mut();
                    assert_eq!(len, raw.len(), "migrated fab size mismatch");
                    rd.f64s_into(len, &mut vals);
                    raw.copy_from_slice(&vals);
                }
                for pc in parts.iter_mut() {
                    let np = rd.u32() as usize;
                    let buf = &mut pc.bufs[bi];
                    for _ in 0..np {
                        let p = (
                            rd.f64(),
                            rd.f64(),
                            rd.f64(),
                            rd.f64(),
                            rd.f64(),
                            rd.f64(),
                            rd.f64(),
                        );
                        buf.push_tuple(p);
                    }
                }
            }
            assert!(rd.is_empty(), "trailing bytes in migration frame");
        }
        self.dm = next.clone();
        self.dm_version += 1;
        Ok(())
    }
}

/// The nine parent-level arrays in their fixed wire order.
fn nine(fs: &mut FieldSet) -> [&mut FabArray; 9] {
    let [e0, e1, e2] = &mut fs.e;
    let [b0, b1, b2] = &mut fs.b;
    let [j0, j1, j2] = &mut fs.j;
    [e0, e1, e2, b0, b1, b2, j0, j1, j2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{faulty_mem_transport, CrashPoint, FaultPlan};
    use crate::sim::boxed;
    use crate::transport::mem_transport;
    use mrpic_amr::{IndexBox, Strategy};

    fn dom() -> IndexBox {
        IndexBox::from_size(IntVect::new(12, 8, 4))
    }

    fn painted(ngrow: i64, stagger: Stagger, guard_junk: bool) -> FabArray {
        let ba = BoxArray::chop(dom(), IntVect::new(4, 4, 4));
        let mut fa = FabArray::new(ba, stagger, 2, ngrow);
        for bi in 0..fa.nfabs() {
            let raw = fa.fab_mut(bi).raw_mut();
            for (k, v) in raw.iter_mut().enumerate() {
                *v = (bi * 100_003 + k) as f64 * 0.37 - 11.0;
            }
            if !guard_junk {
                // Deposit-style state is produced everywhere (valid +
                // guards) by the painter above; fills instead start from
                // junk guards, which is what the loop already made.
            }
        }
        fa
    }

    fn comm_for(fa: &FabArray, nranks: usize) -> DistComm {
        let dm = DistributionMapping::build(fa.boxarray(), nranks, Strategy::RoundRobin, &[]);
        DistComm::new(boxed(mem_transport(nranks)), dm)
    }

    fn assert_bitwise_eq(a: &FabArray, b: &FabArray) {
        for bi in 0..a.nfabs() {
            let (ra, rb) = (a.fab(bi).raw(), b.fab(bi).raw());
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "box {bi} differs");
            }
        }
    }

    #[test]
    fn dist_fill_matches_serial_across_rank_counts() {
        for stagger in [Stagger::CELL, Stagger::efield(0)] {
            for periodic in [Periodicity::none(dom()), Periodicity::all(dom())] {
                let mut reference = painted(2, stagger, true);
                reference.fill_boundary(&periodic);
                for nranks in [1, 2, 3, 4] {
                    let mut fa = painted(2, stagger, true);
                    let mut comm = comm_for(&fa, nranks);
                    comm.fill_group(&mut [&mut fa], &periodic);
                    assert_bitwise_eq(&reference, &fa);
                }
            }
        }
    }

    #[test]
    fn dist_sum_matches_serial_across_rank_counts() {
        for periodic in [Periodicity::none(dom()), Periodicity::all(dom())] {
            let mut reference = painted(2, Stagger::CELL, false);
            reference.sum_boundary(&periodic);
            for nranks in [1, 2, 3, 4] {
                let mut fa = painted(2, Stagger::CELL, false);
                let mut comm = comm_for(&fa, nranks);
                comm.sum_group(&mut [&mut fa], &periodic);
                assert_bitwise_eq(&reference, &fa);
            }
        }
    }

    #[test]
    fn dist_fill_is_bitwise_identical_under_transient_faults() {
        let periodic = Periodicity::all(dom());
        let mut reference = painted(2, Stagger::CELL, true);
        reference.fill_boundary(&periodic);
        for seed in [1u64, 2, 3] {
            let mut fa = painted(2, Stagger::CELL, true);
            let (eps, inj) = faulty_mem_transport(3, FaultPlan::transient(seed));
            let dm = DistributionMapping::build(fa.boxarray(), 3, Strategy::RoundRobin, &[]);
            let mut comm = DistComm::new(boxed(eps), dm);
            comm.attach_injector(inj);
            comm.fill_group(&mut [&mut fa], &periodic);
            assert!(comm.take_loss().is_none(), "transient plan must recover");
            assert_bitwise_eq(&reference, &fa);
            let stats = comm.take_fault_stats().expect("chaos comm reports stats");
            assert_eq!(stats.corruptions_detected, stats.corruptions_injected);
        }
    }

    #[test]
    fn rank_crash_is_recorded_and_the_step_drains() {
        let periodic = Periodicity::none(dom());
        let mut fa = painted(1, Stagger::CELL, true);
        let plan = FaultPlan {
            seed: 11,
            recv_timeout_ms: 50,
            crash: Some(CrashPoint {
                rank: 1,
                step: 0,
                phase: None,
            }),
            ..FaultPlan::default()
        };
        let (eps, inj) = faulty_mem_transport(2, plan);
        let dm = DistributionMapping::build(fa.boxarray(), 2, Strategy::RoundRobin, &[]);
        let mut comm = DistComm::new(boxed(eps), dm);
        comm.attach_injector(inj);
        comm.begin_step(0); // fires the step-level crash
        comm.fill_group(&mut [&mut fa], &periodic);
        let loss = comm.take_loss().expect("crash must be detected");
        assert_eq!(loss.dead_rank, 1);
        assert_eq!(loss.step, 0);
        assert_eq!(loss.phase, Phase::Fill);
        // With the loss pending, later phases drain instead of hanging.
        comm.loss = Some(loss);
        comm.fill_group(&mut [&mut fa], &periodic);
        comm.sum_group(&mut [&mut fa], &periodic);
        let stats = comm.take_fault_stats().unwrap();
        assert_eq!(stats.crashes, 1);
        assert!(stats.peer_losses_detected >= 1);
    }

    #[test]
    fn rank_records_account_messages() {
        let mut fa = painted(1, Stagger::CELL, true);
        let mut comm = comm_for(&fa, 2);
        let p = Periodicity::none(dom());
        comm.fill_group(&mut [&mut fa], &p);
        let recs = comm.take_rank_records();
        assert_eq!(recs.len(), 2);
        // One frame per ordered pair per array.
        assert_eq!(recs.iter().map(|r| r.sent_messages).sum::<u64>(), 2);
        assert!(recs.iter().all(|r| r.sent_bytes >= 8));
        assert!(comm
            .take_rank_records()
            .iter()
            .all(|r| r.sent_messages == 0));
        // No fault layer attached: no stats block either.
        assert!(comm.take_fault_stats().is_none());
    }

    #[test]
    fn plan_cache_hits_on_repeat_exchange() {
        let mut fa = painted(1, Stagger::CELL, true);
        let mut comm = comm_for(&fa, 2);
        let p = Periodicity::none(dom());
        comm.fill_group(&mut [&mut fa], &p);
        comm.fill_group(&mut [&mut fa], &p);
        assert_eq!(comm.plans.len(), 1);
        assert_eq!(fa.stats().plan_builds, 1);
        assert_eq!(fa.stats().exchanges, 2);
    }
}
