//! Distributed simulation driver.
//!
//! [`DistSim`] wraps a fully-built [`Simulation`] and steps it through a
//! [`DistComm`] so every cross-box operation runs as a multi-rank
//! message-passing exchange. Because the step loop's only rank-sensitive
//! inputs are the work partition and the message routing — never the
//! floating-point values or their application order — `step()` is
//! bitwise identical for any rank count.

use std::sync::Arc;

use crate::comm::DistComm;
use crate::transport::{mem_transport, recording_mem_transport, Endpoint, Recorder};
use mrpic_amr::{DistributionMapping, Strategy};
use mrpic_core::sim::{Simulation, StepStats};

/// A simulation executing across N in-process ranks.
pub struct DistSim {
    pub sim: Simulation,
    comm: DistComm,
}

/// Box a homogeneous endpoint set for [`DistSim::new`].
pub fn boxed<E: Endpoint + 'static>(eps: Vec<E>) -> Vec<Box<dyn Endpoint>> {
    eps.into_iter()
        .map(|e| Box::new(e) as Box<dyn Endpoint>)
        .collect()
}

impl DistSim {
    /// Take ownership of `sim`, realigning its distribution mapping to
    /// one shard per endpoint (space-filling-curve split).
    pub fn new(mut sim: Simulation, endpoints: Vec<Box<dyn Endpoint>>) -> Self {
        let nranks = endpoints.len();
        assert!(nranks > 0, "need at least one rank");
        let dm =
            DistributionMapping::build(sim.fs.boxarray(), nranks, Strategy::SpaceFillingCurve, &[]);
        sim.dm = dm.clone();
        let comm = DistComm::new(endpoints, dm);
        Self { sim, comm }
    }

    /// In-process transport over `nranks` ranks.
    pub fn in_process(sim: Simulation, nranks: usize) -> Self {
        Self::new(sim, boxed(mem_transport(nranks)))
    }

    /// In-process transport whose message traffic is captured in the
    /// returned [`Recorder`].
    pub fn recording(sim: Simulation, nranks: usize) -> (Self, Arc<Recorder>) {
        let (eps, rec) = recording_mem_transport(nranks);
        (Self::new(sim, boxed(eps)), rec)
    }

    pub fn nranks(&self) -> usize {
        self.comm.nranks()
    }

    pub fn mapping(&self) -> &DistributionMapping {
        self.comm.mapping()
    }

    /// Advance one step through the distributed backend.
    pub fn step(&mut self) -> StepStats {
        self.sim.step_with(&mut self.comm)
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Force an immediate rebalance adoption, physically migrating box
    /// data between ranks — used by tests and the load-balance ablation
    /// to exercise migration without waiting for a measured imbalance.
    /// Picks a round-robin mapping (or an SFC split seeded with current
    /// costs if round-robin is already active) so something always moves
    /// when `nranks > 1`.
    pub fn force_rebalance(&mut self) {
        let ba = self.sim.fs.boxarray().clone();
        let nranks = self.nranks();
        let mut next = DistributionMapping::build(&ba, nranks, Strategy::RoundRobin, &[]);
        if next == self.sim.dm {
            next = DistributionMapping::build(
                &ba,
                nranks,
                Strategy::SpaceFillingCurve,
                self.sim.cost.costs(),
            );
        }
        let prev = self.sim.dm.clone();
        use mrpic_core::exchange::StepComm;
        self.comm
            .adopt_mapping(&prev, &next, &mut self.sim.fs, &mut self.sim.parts);
        self.sim.fs.invalidate_plans();
        self.sim.dm = next;
    }
}
