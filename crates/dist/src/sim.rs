//! Distributed simulation driver.
//!
//! [`DistSim`] wraps a fully-built [`Simulation`] and steps it through a
//! [`DistComm`] so every cross-box operation runs as a multi-rank
//! message-passing exchange. Because the step loop's only rank-sensitive
//! inputs are the work partition and the message routing — never the
//! floating-point values or their application order — `step()` is
//! bitwise identical for any rank count.
//!
//! **Crash recovery.** With fault injection attached
//! ([`DistSim::with_fault_injection`]), the driver captures a full-state
//! checkpoint epoch every `epoch_interval` steps. When a communication
//! phase reports an unrecoverable [`RankLoss`], the remaining phases of
//! the step drain, and the driver: restores the last epoch, rebuilds the
//! transport over the surviving ranks (with the crash cleared from the
//! plan), redistributes the dead rank's boxes via a space-filling-curve
//! split seeded with the measured per-box costs ([`Simulation::cost`]'s
//! `CostTracker`), invalidates every cached exchange plan, and replays
//! the lost steps. Rank-count independence of `step()` makes the
//! replayed physics bitwise identical to an unfaulted run.

//! **Elastic ranks.** A planned [`ElasticEvent`] (`Grow(k)`/`Shrink(k)`)
//! fires at the start of its step: the driver captures a checkpoint
//! epoch (the barrier — a crash inside the resize window rolls back to
//! exactly here), rebuilds the distribution mapping as a cost-seeded
//! space-filling-curve split over the new rank count, rebuilds the
//! transport through its [`TransportKind`] factory (socket meshes get a
//! fresh generation), invalidates every cached exchange plan, and
//! resumes. Rank-count independence of `step()` makes the continued run
//! bitwise identical to an uninterrupted run at the final rank count.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::comm::{DistComm, RankLoss};
use crate::faults::{faulty_mem_transport, FaultInjector, FaultPlan};
use crate::socket::{proc_transport, socket_mesh, MeshCfg};
use crate::transport::{
    mem_transport, recording_mem_transport, Endpoint, Phase, Recorder, RecordingEndpoint,
};
use mrpic_amr::{DistributionMapping, Strategy};
use mrpic_core::checkpoint::Checkpoint;
use mrpic_core::sim::{Simulation, StepStats};

/// One completed crash recovery, for diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Step during which the loss surfaced.
    pub detected_step: u64,
    /// Communication phase that detected it.
    pub phase: Phase,
    pub dead_rank: usize,
    /// Rank count after the shrink.
    pub survivors: usize,
    /// Step of the checkpoint epoch rolled back to.
    pub epoch_step: u64,
    /// Steps replayed to catch back up.
    pub replayed: u64,
}

/// How to (re)build the transport of a [`DistSim`] — consulted whenever
/// the mesh must be reconstructed (crash recovery, elastic resize).
#[derive(Clone, Debug)]
pub enum TransportKind {
    /// Plain in-process mpsc mesh. Also the fallback for custom
    /// endpoint sets handed to [`DistSim::new`] directly: a resize of
    /// such a sim rebuilds as the in-process mesh.
    Mem,
    /// Fault-injected in-process mesh driven by the sim's `fault_plan`.
    Faulty,
    /// In-process mesh whose every pair is a real socket connection.
    Socket(MeshCfg),
    /// Process mode: this OS process owns `my_rank`; edges touching it
    /// cross real sockets, everything else is the replicated local mesh
    /// (DESIGN.md §15). A rank outside the current mesh runs as a pure
    /// local spectator replica until a grow includes it.
    Proc { mesh: MeshCfg, my_rank: usize },
}

/// What to do to the rank count, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElasticAction {
    /// Add `k` ranks.
    Grow(usize),
    /// Remove `k` ranks.
    Shrink(usize),
}

/// One planned rank-count change, applied at the start of `step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElasticEvent {
    pub step: u64,
    pub action: ElasticAction,
}

/// Parse an elastic plan spec: comma-separated `grow:STEP:K` /
/// `shrink:STEP:K` events, e.g. `grow:20:2,shrink:30:2`.
pub fn parse_elastic_plan(spec: &str) -> Result<Vec<ElasticEvent>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let fields: Vec<&str> = part.split(':').collect();
        let [action, step, k] = fields[..] else {
            return Err(format!("elastic event `{part}`: want ACTION:STEP:K"));
        };
        let step: u64 = step
            .parse()
            .map_err(|_| format!("elastic event `{part}`: bad step `{step}`"))?;
        let k: usize = k
            .parse()
            .ok()
            .filter(|&k| k > 0)
            .ok_or_else(|| format!("elastic event `{part}`: bad rank delta `{k}`"))?;
        let action = match action {
            "grow" => ElasticAction::Grow(k),
            "shrink" => ElasticAction::Shrink(k),
            _ => return Err(format!("elastic event `{part}`: unknown action `{action}`")),
        };
        out.push(ElasticEvent { step, action });
    }
    out.sort_by_key(|e| e.step);
    Ok(out)
}

/// One completed elastic resize, for diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Step at whose start the barrier ran.
    pub step: u64,
    pub from: usize,
    pub to: usize,
}

/// A simulation executing across N in-process ranks.
pub struct DistSim {
    pub sim: Simulation,
    comm: DistComm,
    /// How to rebuild the transport on recovery or resize.
    kind: TransportKind,
    /// Recorder every rebuilt endpoint set is re-wrapped with.
    recorder: Option<Arc<Recorder>>,
    /// Fault plan of the active transport (None: plain transport).
    fault_plan: Option<FaultPlan>,
    injector: Option<Arc<FaultInjector>>,
    /// Steps between full-state checkpoint epochs (chaos runs only).
    epoch_interval: u64,
    epoch: Option<Checkpoint>,
    /// Planned rank-count changes, ascending by step, consumed once.
    elastic: VecDeque<ElasticEvent>,
    /// Every crash recovery performed, in order.
    pub recovery_log: Vec<RecoveryEvent>,
    /// Every elastic resize performed, in order.
    pub resize_log: Vec<ResizeEvent>,
}

/// Box a homogeneous endpoint set for [`DistSim::new`].
pub fn boxed<E: Endpoint + 'static>(eps: Vec<E>) -> Vec<Box<dyn Endpoint>> {
    eps.into_iter()
        .map(|e| Box::new(e) as Box<dyn Endpoint>)
        .collect()
}

impl DistSim {
    /// Take ownership of `sim`, realigning its distribution mapping to
    /// one shard per endpoint (space-filling-curve split).
    pub fn new(mut sim: Simulation, endpoints: Vec<Box<dyn Endpoint>>) -> Self {
        let nranks = endpoints.len();
        assert!(nranks > 0, "need at least one rank");
        let dm =
            DistributionMapping::build(sim.fs.boxarray(), nranks, Strategy::SpaceFillingCurve, &[]);
        sim.dm = dm.clone();
        // The live LB policy must evaluate candidates over the actual
        // endpoint count, not whatever the builder assumed.
        if let Some(policy) = &mut sim.lb {
            policy.set_nranks(nranks);
        }
        let comm = DistComm::new(endpoints, dm);
        Self {
            sim,
            comm,
            kind: TransportKind::Mem,
            recorder: None,
            fault_plan: None,
            injector: None,
            epoch_interval: 10,
            epoch: None,
            elastic: VecDeque::new(),
            recovery_log: Vec::new(),
            resize_log: Vec::new(),
        }
    }

    /// In-process transport over `nranks` ranks.
    pub fn in_process(sim: Simulation, nranks: usize) -> Self {
        Self::new(sim, boxed(mem_transport(nranks)))
    }

    /// In-process transport whose message traffic is captured in the
    /// returned [`Recorder`].
    pub fn recording(sim: Simulation, nranks: usize) -> (Self, Arc<Recorder>) {
        let (eps, rec) = recording_mem_transport(nranks);
        let mut ds = Self::new(sim, boxed(eps));
        ds.recorder = Some(Arc::clone(&rec));
        (ds, rec)
    }

    /// In-process mesh whose every rank pair is a real socket
    /// connection (Unix-domain or TCP per `cfg`); the rank threads
    /// exchange every byte through the kernel.
    pub fn socket_mesh(sim: Simulation, cfg: MeshCfg) -> std::io::Result<Self> {
        let eps = socket_mesh(&cfg)?;
        let mut ds = Self::new(sim, boxed(eps));
        ds.kind = TransportKind::Socket(cfg);
        Ok(ds)
    }

    /// [`Self::socket_mesh`] with every endpoint wrapped in the
    /// returned message [`Recorder`].
    pub fn socket_mesh_recording(
        sim: Simulation,
        cfg: MeshCfg,
    ) -> std::io::Result<(Self, Arc<Recorder>)> {
        let rec = Arc::new(Recorder::default());
        let eps: Vec<Box<dyn Endpoint>> = socket_mesh(&cfg)?
            .into_iter()
            .map(|e| Box::new(RecordingEndpoint::wrap(e, Arc::clone(&rec))) as Box<dyn Endpoint>)
            .collect();
        let mut ds = Self::new(sim, eps);
        ds.kind = TransportKind::Socket(cfg);
        ds.recorder = Some(Arc::clone(&rec));
        Ok((ds, rec))
    }

    /// One `mrpic_rank` worker process: this process is authoritative
    /// for `my_rank`, whose message edges cross real sockets to the
    /// peer processes; every other rank runs as a local replica thread.
    /// A `my_rank` outside the current mesh builds a pure local
    /// spectator replica (it joins the wire when a grow includes it).
    pub fn process_rank(sim: Simulation, mesh: MeshCfg, my_rank: usize) -> std::io::Result<Self> {
        let eps: Vec<Box<dyn Endpoint>> = if my_rank < mesh.nranks {
            boxed(proc_transport(&mesh, my_rank)?)
        } else {
            boxed(mem_transport(mesh.nranks))
        };
        let mut ds = Self::new(sim, eps);
        ds.kind = TransportKind::Proc { mesh, my_rank };
        Ok(ds)
    }

    /// In-process transport perturbed by the seeded fault `plan`:
    /// delays, corruption, and transient failures are absorbed
    /// transparently (and counted in the step telemetry's `FaultStats`);
    /// a planned rank crash triggers checkpoint rollback and replay on
    /// the surviving ranks.
    pub fn with_fault_injection(sim: Simulation, nranks: usize, plan: FaultPlan) -> Self {
        let (eps, inj) = faulty_mem_transport(nranks, plan.clone());
        let mut ds = Self::new(sim, boxed(eps));
        ds.comm.attach_injector(Arc::clone(&inj));
        ds.kind = TransportKind::Faulty;
        ds.fault_plan = Some(plan);
        ds.injector = Some(inj);
        ds
    }

    pub fn nranks(&self) -> usize {
        self.comm.nranks()
    }

    pub fn mapping(&self) -> &DistributionMapping {
        self.comm.mapping()
    }

    /// Shared fault-injection state (chaos runs only).
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Steps between checkpoint epochs in chaos runs (default 10). A
    /// crash costs at most `n` replayed steps.
    pub fn set_epoch_interval(&mut self, n: u64) {
        assert!(n > 0, "epoch interval must be positive");
        self.epoch_interval = n;
    }

    /// Re-capture the recovery epoch right now. Call after mutating the
    /// simulation outside the step loop (e.g. removing an MR patch), so
    /// a later rollback restores into a structurally identical target.
    pub fn refresh_epoch(&mut self) {
        if self.fault_plan.is_some() {
            self.epoch = Some(Checkpoint::capture(&self.sim));
        }
    }

    /// Install a planned elastic schedule; each event fires once, at
    /// the start of its step. Events must be sorted (use
    /// [`parse_elastic_plan`]).
    pub fn set_elastic_plan(&mut self, events: Vec<ElasticEvent>) {
        assert!(
            events.windows(2).all(|w| w[0].step <= w[1].step),
            "elastic plan must be sorted by step"
        );
        self.elastic = events.into();
    }

    /// Resize the mesh to `target` ranks right now (between steps): the
    /// checkpoint-epoch barrier, a cost-seeded SFC re-adoption of every
    /// box onto the new rank set, a transport rebuild (socket meshes
    /// get a fresh generation), and full plan invalidation. The
    /// continued run is bitwise identical to an uninterrupted run at
    /// `target` ranks.
    pub fn resize(&mut self, target: usize) {
        assert!(target >= 1, "cannot shrink below one rank");
        let from = self.nranks();
        if target == from {
            return;
        }
        // The barrier: the step boundary is already quiesced (no frames
        // in flight), and the captured epoch pins the rollback target
        // should a rank crash inside the resize window.
        self.epoch = Some(Checkpoint::capture(&self.sim));
        let dm = DistributionMapping::build(
            self.sim.fs.boxarray(),
            target,
            Strategy::SpaceFillingCurve,
            self.sim.cost.costs(),
        );
        self.sim.dm = dm.clone();
        if let Some(policy) = &mut self.sim.lb {
            policy.set_nranks(target);
        }
        match &mut self.kind {
            TransportKind::Socket(cfg) => {
                cfg.nranks = target;
                cfg.generation += 1;
            }
            TransportKind::Proc { mesh, .. } => {
                mesh.nranks = target;
                mesh.generation += 1;
            }
            TransportKind::Mem | TransportKind::Faulty => {}
        }
        let (eps, inj) =
            Self::build_endpoints(&self.kind, target, &self.fault_plan, &self.recorder);
        let mut comm = DistComm::new(eps, dm);
        if let Some(inj) = &inj {
            comm.attach_injector(Arc::clone(inj));
        }
        self.comm = comm;
        self.injector = inj;
        // Every cached exchange plan was partitioned for the old mesh.
        self.sim.invalidate_all_plans();
        self.resize_log.push(ResizeEvent {
            step: self.sim.istep,
            from,
            to: target,
        });
    }

    /// Build a fresh endpoint set per the transport kind, re-wrapping
    /// with the recorder when one is attached.
    fn build_endpoints(
        kind: &TransportKind,
        nranks: usize,
        fault_plan: &Option<FaultPlan>,
        recorder: &Option<Arc<Recorder>>,
    ) -> (Vec<Box<dyn Endpoint>>, Option<Arc<FaultInjector>>) {
        fn finish<E: Endpoint + 'static>(
            eps: Vec<E>,
            recorder: &Option<Arc<Recorder>>,
        ) -> Vec<Box<dyn Endpoint>> {
            match recorder {
                Some(rec) => eps
                    .into_iter()
                    .map(|e| {
                        Box::new(RecordingEndpoint::wrap(e, Arc::clone(rec))) as Box<dyn Endpoint>
                    })
                    .collect(),
                None => boxed(eps),
            }
        }
        match kind {
            TransportKind::Mem => (finish(mem_transport(nranks), recorder), None),
            TransportKind::Faulty => {
                let plan = fault_plan.clone().expect("faulty transport without a plan");
                let (eps, inj) = faulty_mem_transport(nranks, plan);
                (finish(eps, recorder), Some(inj))
            }
            TransportKind::Socket(cfg) => {
                let eps = socket_mesh(cfg).unwrap_or_else(|e| {
                    panic!(
                        "rebuilding socket mesh (generation {}): {e}",
                        cfg.generation
                    )
                });
                (finish(eps, recorder), None)
            }
            TransportKind::Proc { mesh, my_rank } => {
                let eps = if *my_rank < mesh.nranks {
                    finish(
                        proc_transport(mesh, *my_rank).unwrap_or_else(|e| {
                            panic!(
                                "rank {} rejoining mesh generation {}: {e}",
                                my_rank, mesh.generation
                            )
                        }),
                        recorder,
                    )
                } else {
                    // Shrunk out of (or not yet grown into) the mesh:
                    // keep stepping as a local spectator replica.
                    finish(mem_transport(mesh.nranks), recorder)
                };
                (eps, None)
            }
        }
    }

    /// Advance one step through the distributed backend, recovering from
    /// an injected rank crash if one surfaces.
    pub fn step(&mut self) -> StepStats {
        while self
            .elastic
            .front()
            .is_some_and(|e| e.step <= self.sim.istep)
        {
            let ev = self.elastic.pop_front().unwrap();
            let cur = self.nranks();
            let target = match ev.action {
                ElasticAction::Grow(k) => cur + k,
                ElasticAction::Shrink(k) => {
                    assert!(k < cur, "elastic shrink below one rank");
                    cur - k
                }
            };
            self.resize(target);
        }
        if self.fault_plan.is_some() && self.sim.istep.is_multiple_of(self.epoch_interval) {
            self.epoch = Some(Checkpoint::capture(&self.sim));
        }
        let stats = self.sim.step_with(&mut self.comm);
        if let Some(loss) = self.comm.take_loss() {
            return self.recover(loss);
        }
        stats
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Survive `loss`: roll back to the last checkpoint epoch, shrink
    /// the rank set, and replay. The drained step left finite-but-stale
    /// state behind; the restore discards all of it.
    fn recover(&mut self, loss: RankLoss) -> StepStats {
        let plan = self
            .fault_plan
            .as_ref()
            .unwrap_or_else(|| panic!("unrecoverable transport failure: {}", loss.error));
        let epoch = self
            .epoch
            .take()
            .unwrap_or_else(|| panic!("rank loss before first epoch: {}", loss.error));
        let survivors = self.nranks() - 1;
        assert!(survivors >= 1, "no surviving ranks: {}", loss.error);
        // The target is wherever the run had gotten to: the drained step
        // still advanced the clock, so replay re-runs it cleanly.
        let target = self.sim.istep;
        epoch
            .restore(&mut self.sim)
            .unwrap_or_else(|e| panic!("epoch restore failed during recovery: {e}"));
        // Adopt the dead rank's boxes: SFC split over the survivors,
        // seeded with the measured per-box costs so the redistribution
        // is load-aware, like a regular rebalance.
        let dm = DistributionMapping::build(
            self.sim.fs.boxarray(),
            survivors,
            Strategy::SpaceFillingCurve,
            self.sim.cost.costs(),
        );
        self.sim.dm = dm.clone();
        // Rebalance decisions now target the shrunken rank set.
        if let Some(policy) = &mut self.sim.lb {
            policy.set_nranks(survivors);
        }
        // Fresh transport over the survivors, same seed, crash cleared —
        // in-flight frames of the dead transport are dropped with it.
        let mut replay_plan = plan.clone();
        replay_plan.crash = None;
        let (eps, inj) = faulty_mem_transport(survivors, replay_plan.clone());
        let mut comm = DistComm::new(boxed(eps), dm);
        comm.attach_injector(Arc::clone(&inj));
        self.comm = comm;
        self.fault_plan = Some(replay_plan);
        self.injector = Some(inj);
        // The rank set changed under every cached exchange plan.
        self.sim.invalidate_all_plans();
        let replayed = target - self.sim.istep;
        self.comm.note_recovery(replayed);
        self.recovery_log.push(RecoveryEvent {
            detected_step: loss.step,
            phase: loss.phase,
            dead_rank: loss.dead_rank,
            survivors,
            epoch_step: self.sim.istep,
            replayed,
        });
        let mut last = StepStats::default();
        for _ in 0..replayed {
            last = self.step();
        }
        last
    }

    /// Force an immediate rebalance adoption, physically migrating box
    /// data between ranks — used by tests and the load-balance ablation
    /// to exercise migration without waiting for a measured imbalance.
    /// Picks a round-robin mapping (or an SFC split seeded with current
    /// costs if round-robin is already active) so something always moves
    /// when `nranks > 1`.
    pub fn force_rebalance(&mut self) {
        let ba = self.sim.fs.boxarray().clone();
        let nranks = self.nranks();
        let mut next = DistributionMapping::build(&ba, nranks, Strategy::RoundRobin, &[]);
        if next == self.sim.dm {
            next = DistributionMapping::build(
                &ba,
                nranks,
                Strategy::SpaceFillingCurve,
                self.sim.cost.costs(),
            );
        }
        let prev = self.sim.dm.clone();
        use mrpic_core::exchange::StepComm;
        self.comm
            .adopt_mapping(&prev, &next, &mut self.sim.fs, &mut self.sim.parts);
        self.sim.fs.invalidate_plans();
        self.sim.dm = next;
    }
}
