//! Distributed simulation driver.
//!
//! [`DistSim`] wraps a fully-built [`Simulation`] and steps it through a
//! [`DistComm`] so every cross-box operation runs as a multi-rank
//! message-passing exchange. Because the step loop's only rank-sensitive
//! inputs are the work partition and the message routing — never the
//! floating-point values or their application order — `step()` is
//! bitwise identical for any rank count.
//!
//! **Crash recovery.** With fault injection attached
//! ([`DistSim::with_fault_injection`]), the driver captures a full-state
//! checkpoint epoch every `epoch_interval` steps. When a communication
//! phase reports an unrecoverable [`RankLoss`], the remaining phases of
//! the step drain, and the driver: restores the last epoch, rebuilds the
//! transport over the surviving ranks (with the crash cleared from the
//! plan), redistributes the dead rank's boxes via a space-filling-curve
//! split seeded with the measured per-box costs ([`Simulation::cost`]'s
//! `CostTracker`), invalidates every cached exchange plan, and replays
//! the lost steps. Rank-count independence of `step()` makes the
//! replayed physics bitwise identical to an unfaulted run.

use std::sync::Arc;

use crate::comm::{DistComm, RankLoss};
use crate::faults::{faulty_mem_transport, FaultInjector, FaultPlan};
use crate::transport::{mem_transport, recording_mem_transport, Endpoint, Phase, Recorder};
use mrpic_amr::{DistributionMapping, Strategy};
use mrpic_core::checkpoint::Checkpoint;
use mrpic_core::sim::{Simulation, StepStats};

/// One completed crash recovery, for diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Step during which the loss surfaced.
    pub detected_step: u64,
    /// Communication phase that detected it.
    pub phase: Phase,
    pub dead_rank: usize,
    /// Rank count after the shrink.
    pub survivors: usize,
    /// Step of the checkpoint epoch rolled back to.
    pub epoch_step: u64,
    /// Steps replayed to catch back up.
    pub replayed: u64,
}

/// A simulation executing across N in-process ranks.
pub struct DistSim {
    pub sim: Simulation,
    comm: DistComm,
    /// Fault plan of the active transport (None: plain transport).
    fault_plan: Option<FaultPlan>,
    injector: Option<Arc<FaultInjector>>,
    /// Steps between full-state checkpoint epochs (chaos runs only).
    epoch_interval: u64,
    epoch: Option<Checkpoint>,
    /// Every crash recovery performed, in order.
    pub recovery_log: Vec<RecoveryEvent>,
}

/// Box a homogeneous endpoint set for [`DistSim::new`].
pub fn boxed<E: Endpoint + 'static>(eps: Vec<E>) -> Vec<Box<dyn Endpoint>> {
    eps.into_iter()
        .map(|e| Box::new(e) as Box<dyn Endpoint>)
        .collect()
}

impl DistSim {
    /// Take ownership of `sim`, realigning its distribution mapping to
    /// one shard per endpoint (space-filling-curve split).
    pub fn new(mut sim: Simulation, endpoints: Vec<Box<dyn Endpoint>>) -> Self {
        let nranks = endpoints.len();
        assert!(nranks > 0, "need at least one rank");
        let dm =
            DistributionMapping::build(sim.fs.boxarray(), nranks, Strategy::SpaceFillingCurve, &[]);
        sim.dm = dm.clone();
        // The live LB policy must evaluate candidates over the actual
        // endpoint count, not whatever the builder assumed.
        if let Some(policy) = &mut sim.lb {
            policy.set_nranks(nranks);
        }
        let comm = DistComm::new(endpoints, dm);
        Self {
            sim,
            comm,
            fault_plan: None,
            injector: None,
            epoch_interval: 10,
            epoch: None,
            recovery_log: Vec::new(),
        }
    }

    /// In-process transport over `nranks` ranks.
    pub fn in_process(sim: Simulation, nranks: usize) -> Self {
        Self::new(sim, boxed(mem_transport(nranks)))
    }

    /// In-process transport whose message traffic is captured in the
    /// returned [`Recorder`].
    pub fn recording(sim: Simulation, nranks: usize) -> (Self, Arc<Recorder>) {
        let (eps, rec) = recording_mem_transport(nranks);
        (Self::new(sim, boxed(eps)), rec)
    }

    /// In-process transport perturbed by the seeded fault `plan`:
    /// delays, corruption, and transient failures are absorbed
    /// transparently (and counted in the step telemetry's `FaultStats`);
    /// a planned rank crash triggers checkpoint rollback and replay on
    /// the surviving ranks.
    pub fn with_fault_injection(sim: Simulation, nranks: usize, plan: FaultPlan) -> Self {
        let (eps, inj) = faulty_mem_transport(nranks, plan.clone());
        let mut ds = Self::new(sim, boxed(eps));
        ds.comm.attach_injector(Arc::clone(&inj));
        ds.fault_plan = Some(plan);
        ds.injector = Some(inj);
        ds
    }

    pub fn nranks(&self) -> usize {
        self.comm.nranks()
    }

    pub fn mapping(&self) -> &DistributionMapping {
        self.comm.mapping()
    }

    /// Shared fault-injection state (chaos runs only).
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Steps between checkpoint epochs in chaos runs (default 10). A
    /// crash costs at most `n` replayed steps.
    pub fn set_epoch_interval(&mut self, n: u64) {
        assert!(n > 0, "epoch interval must be positive");
        self.epoch_interval = n;
    }

    /// Re-capture the recovery epoch right now. Call after mutating the
    /// simulation outside the step loop (e.g. removing an MR patch), so
    /// a later rollback restores into a structurally identical target.
    pub fn refresh_epoch(&mut self) {
        if self.fault_plan.is_some() {
            self.epoch = Some(Checkpoint::capture(&self.sim));
        }
    }

    /// Advance one step through the distributed backend, recovering from
    /// an injected rank crash if one surfaces.
    pub fn step(&mut self) -> StepStats {
        if self.fault_plan.is_some() && self.sim.istep.is_multiple_of(self.epoch_interval) {
            self.epoch = Some(Checkpoint::capture(&self.sim));
        }
        let stats = self.sim.step_with(&mut self.comm);
        if let Some(loss) = self.comm.take_loss() {
            return self.recover(loss);
        }
        stats
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Survive `loss`: roll back to the last checkpoint epoch, shrink
    /// the rank set, and replay. The drained step left finite-but-stale
    /// state behind; the restore discards all of it.
    fn recover(&mut self, loss: RankLoss) -> StepStats {
        let plan = self
            .fault_plan
            .as_ref()
            .unwrap_or_else(|| panic!("unrecoverable transport failure: {}", loss.error));
        let epoch = self
            .epoch
            .take()
            .unwrap_or_else(|| panic!("rank loss before first epoch: {}", loss.error));
        let survivors = self.nranks() - 1;
        assert!(survivors >= 1, "no surviving ranks: {}", loss.error);
        // The target is wherever the run had gotten to: the drained step
        // still advanced the clock, so replay re-runs it cleanly.
        let target = self.sim.istep;
        epoch
            .restore(&mut self.sim)
            .unwrap_or_else(|e| panic!("epoch restore failed during recovery: {e}"));
        // Adopt the dead rank's boxes: SFC split over the survivors,
        // seeded with the measured per-box costs so the redistribution
        // is load-aware, like a regular rebalance.
        let dm = DistributionMapping::build(
            self.sim.fs.boxarray(),
            survivors,
            Strategy::SpaceFillingCurve,
            self.sim.cost.costs(),
        );
        self.sim.dm = dm.clone();
        // Rebalance decisions now target the shrunken rank set.
        if let Some(policy) = &mut self.sim.lb {
            policy.set_nranks(survivors);
        }
        // Fresh transport over the survivors, same seed, crash cleared —
        // in-flight frames of the dead transport are dropped with it.
        let mut replay_plan = plan.clone();
        replay_plan.crash = None;
        let (eps, inj) = faulty_mem_transport(survivors, replay_plan.clone());
        let mut comm = DistComm::new(boxed(eps), dm);
        comm.attach_injector(Arc::clone(&inj));
        self.comm = comm;
        self.fault_plan = Some(replay_plan);
        self.injector = Some(inj);
        // The rank set changed under every cached exchange plan.
        self.sim.invalidate_all_plans();
        let replayed = target - self.sim.istep;
        self.comm.note_recovery(replayed);
        self.recovery_log.push(RecoveryEvent {
            detected_step: loss.step,
            phase: loss.phase,
            dead_rank: loss.dead_rank,
            survivors,
            epoch_step: self.sim.istep,
            replayed,
        });
        let mut last = StepStats::default();
        for _ in 0..replayed {
            last = self.step();
        }
        last
    }

    /// Force an immediate rebalance adoption, physically migrating box
    /// data between ranks — used by tests and the load-balance ablation
    /// to exercise migration without waiting for a measured imbalance.
    /// Picks a round-robin mapping (or an SFC split seeded with current
    /// costs if round-robin is already active) so something always moves
    /// when `nranks > 1`.
    pub fn force_rebalance(&mut self) {
        let ba = self.sim.fs.boxarray().clone();
        let nranks = self.nranks();
        let mut next = DistributionMapping::build(&ba, nranks, Strategy::RoundRobin, &[]);
        if next == self.sim.dm {
            next = DistributionMapping::build(
                &ba,
                nranks,
                Strategy::SpaceFillingCurve,
                self.sim.cost.costs(),
            );
        }
        let prev = self.sim.dm.clone();
        use mrpic_core::exchange::StepComm;
        self.comm
            .adopt_mapping(&prev, &next, &mut self.sim.fs, &mut self.sim.parts);
        self.sim.fs.invalidate_plans();
        self.sim.dm = next;
    }
}
