//! Out-of-band metrics channel for process meshes.
//!
//! Workers push low-rate [`FrameKind::Metrics`] frames (JSON
//! [`RankMetrics`] payloads) over a dedicated Unix-domain socket to the
//! `mrpic_run` supervisor, which folds them into a
//! [`MetricsHub`]. The channel reuses the CRC-framed wire format of the
//! step-loop transport but is deliberately *not* part of the mesh: it
//! carries no step-loop traffic, every send is best-effort (a worker
//! that cannot connect, or whose push fails, just stops pushing), and a
//! corrupt frame drops the connection rather than the run.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use mrpic_obs::{MetricsHub, RankMetrics};

use crate::frame::{self, FrameKind, HEADER_LEN, TRAILER_LEN};

/// File name of the metrics socket inside the supervisor's mesh dir.
pub const METRICS_SOCK_FILE: &str = "metrics.sock";

/// Worker-side pusher: connects once, then fires one frame per sample.
///
/// Every failure path degrades to "no more metrics" — observability
/// must never take down a run.
pub struct MetricsPusher {
    stream: Option<UnixStream>,
    src: u16,
    seq: u32,
}

impl MetricsPusher {
    /// Connect to the supervisor's metrics socket. A missing or
    /// unreachable socket yields a pusher whose pushes are no-ops.
    pub fn connect(path: &Path, rank: usize) -> Self {
        let stream = match UnixStream::connect(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!(
                    "warning: rank {rank}: metrics socket {} unreachable ({e}); \
                     metrics disabled",
                    path.display()
                );
                None
            }
        };
        Self {
            stream,
            src: rank.min(u16::MAX as usize) as u16,
            seq: 0,
        }
    }

    /// A pusher that never sends (no `--metrics-sock` given).
    pub fn disabled() -> Self {
        Self {
            stream: None,
            src: 0,
            seq: 0,
        }
    }

    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Push one sample; on any write error the connection is dropped
    /// and subsequent pushes become no-ops.
    pub fn push(&mut self, m: &RankMetrics) {
        let Some(stream) = &mut self.stream else {
            return;
        };
        let Ok(payload) = serde_json::to_vec(m) else {
            return;
        };
        let buf = frame::encode(
            FrameKind::Metrics,
            0,
            self.src,
            u16::MAX,
            self.seq,
            m.step,
            &payload,
        );
        self.seq = self.seq.wrapping_add(1);
        if stream
            .write_all(&buf)
            .and_then(|()| stream.flush())
            .is_err()
        {
            self.stream = None;
        }
    }
}

/// Supervisor side: bind `dir/metrics.sock` and fold every valid
/// metrics frame into `hub` from detached background threads. Returns
/// once the listener is bound; accepting and reading never block the
/// supervisor.
pub fn spawn_metrics_listener(dir: &Path, hub: MetricsHub) -> std::io::Result<()> {
    let path = dir.join(METRICS_SOCK_FILE);
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    std::thread::Builder::new()
        .name("mrpic-metrics-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let hub = hub.clone();
                let _ = std::thread::Builder::new()
                    .name("mrpic-metrics-read".into())
                    .spawn(move || read_metrics_stream(stream, &hub));
            }
        })?;
    Ok(())
}

/// Drain one worker's metrics stream until EOF or the first bad frame.
fn read_metrics_stream(mut stream: UnixStream, hub: &MetricsHub) {
    loop {
        let mut buf = vec![0u8; HEADER_LEN];
        if stream.read_exact(&mut buf).is_err() {
            return;
        }
        let Ok(h) = frame::decode_header(&buf) else {
            return;
        };
        let mut rest = vec![0u8; h.len as usize + TRAILER_LEN];
        if stream.read_exact(&mut rest).is_err() {
            return;
        }
        let (payload, trailer) = rest.split_at(h.len as usize);
        buf.extend_from_slice(payload);
        let trailer: [u8; 4] = trailer.try_into().unwrap();
        if frame::check_crc(&buf, trailer).is_err() {
            return;
        }
        if h.kind != FrameKind::Metrics {
            continue;
        }
        if let Ok(m) = serde_json::from_slice::<RankMetrics>(&buf[HEADER_LEN..]) {
            hub.update_rank(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pusher_to_listener_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mrpic_obswire_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let hub = MetricsHub::new("run");
        spawn_metrics_listener(&dir, hub.clone()).unwrap();

        let mut p = MetricsPusher::connect(&dir.join(METRICS_SOCK_FILE), 1);
        assert!(p.is_connected());
        p.push(&RankMetrics {
            rank: 1,
            step: 25,
            wire_bytes: 777,
            ..RankMetrics::default()
        });
        // The reader thread races the assertion; poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let snap = hub.snapshot();
            if let Some(r) = snap.ranks.iter().find(|r| r.rank == 1) {
                assert_eq!(r.step, 25);
                assert_eq!(r.wire_bytes, 777);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "sample never arrived");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pusher_survives_missing_socket() {
        let mut p = MetricsPusher::connect(Path::new("/nonexistent/metrics.sock"), 0);
        assert!(!p.is_connected());
        p.push(&RankMetrics::default());
        let mut d = MetricsPusher::disabled();
        d.push(&RankMetrics::default());
    }
}
