//! Wire frame format of the out-of-process socket transport.
//!
//! Every byte string the socket backend puts on a stream is one
//! length-prefixed frame:
//!
//! | offset | size | field                                            |
//! |--------|------|--------------------------------------------------|
//! | 0      | 4    | magic `0x4350524D` (`"MRPC"` little-endian)      |
//! | 4      | 2    | protocol version ([`PROTO_VERSION`])             |
//! | 6      | 1    | frame kind (data / hello / hello-ack / retire)   |
//! | 7      | 1    | communication phase (0 for control frames)       |
//! | 8      | 2    | source rank                                      |
//! | 10     | 2    | destination rank                                 |
//! | 12     | 4    | tag sequence number                              |
//! | 16     | 8    | simulation step                                  |
//! | 24     | 4    | payload length `n`                               |
//! | 28     | n    | payload (itself CRC-sealed by `msg::seal`)       |
//! | 28+n   | 4    | CRC-32 over bytes `[0, 28+n)`                    |
//!
//! The trailing CRC reuses the `msg::crc32` discipline (IEEE
//! polynomial) and covers the *header too*, so a bit flip in routing
//! metadata is as loud as one in the physics payload. Decoding never
//! panics: every malformed input maps to a structured [`FrameError`]
//! that the transport converts into a [`TransportError`]
//! (`crates/dist/tests/frame.rs` drives the negative space with
//! proptest).

use crate::msg::crc32;
use crate::transport::{Phase, Tag, TransportErrorKind};

/// `"MRPC"` as a little-endian `u32`.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"MRPC");

/// Bumped whenever the frame layout or the handshake changes; a peer
/// speaking a different version is rejected at decode, not trusted.
pub const PROTO_VERSION: u16 = 1;

/// Fixed bytes before the payload.
pub const HEADER_LEN: usize = 28;

/// Trailing CRC-32 bytes.
pub const TRAILER_LEN: usize = 4;

/// Upper bound on a single frame payload (1 GiB): a length field larger
/// than this is a desynchronized or hostile stream, not a real message.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// What a frame is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A tagged step-loop message (fill/sum/redistribute/migrate).
    Data = 0,
    /// Connection handshake, connector → acceptor.
    Hello = 1,
    /// Connection handshake, acceptor → connector.
    HelloAck = 2,
    /// Orderly goodbye from a rank leaving the mesh (elastic shrink).
    Retire = 3,
    /// Low-rate observability sample (JSON `RankMetrics` payload),
    /// worker → supervisor. Out-of-band: never part of the step-loop
    /// schedule, so losing one costs a sample, not determinism.
    Metrics = 4,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::HelloAck),
            3 => Some(FrameKind::Retire),
            4 => Some(FrameKind::Metrics),
            _ => None,
        }
    }
}

/// Decoded frame metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: FrameKind,
    /// Communication phase byte; 0 for control frames, otherwise a
    /// valid [`Phase`] discriminant.
    pub phase: u8,
    pub src: u16,
    pub dst: u16,
    pub seq: u32,
    pub step: u64,
    /// Payload length in bytes.
    pub len: u32,
}

impl FrameHeader {
    /// The message tag of a data frame (`None` for control frames or a
    /// phase byte outside the [`Phase`] range).
    pub fn tag(&self) -> Option<Tag> {
        Some(Tag {
            phase: Phase::from_u8(self.phase)?,
            seq: self.seq,
        })
    }
}

/// Every way a received byte string can fail to be a frame. All are
/// detected structurally — decoding never panics and never applies a
/// damaged payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header + trailer demand.
    Truncated { need: usize, have: usize },
    /// The magic field is not [`FRAME_MAGIC`] — not our protocol.
    BadMagic(u32),
    /// The peer speaks a different frame-format version.
    VersionMismatch { got: u16, want: u16 },
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A data frame carrying a phase byte outside the [`Phase`] range.
    BadPhase(u8),
    /// Payload length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The trailing CRC-32 does not match the header + payload bytes.
    CrcMismatch { got: u32, want: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks {got}, we speak {want}"
                )
            }
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadPhase(p) => write!(f, "data frame with invalid phase byte {p}"),
            FrameError::Oversized(n) => write!(f, "frame payload length {n} exceeds cap"),
            FrameError::CrcMismatch { got, want } => {
                write!(
                    f,
                    "frame CRC mismatch: computed {got:#010x}, trailer {want:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The transport-error class this failure belongs to: integrity
    /// failures (CRC, truncation) are [`Corrupt`]; structural mismatches
    /// (magic, version, kind, phase, oversize) mean the stream is not —
    /// or no longer — speaking our protocol: [`Desync`].
    ///
    /// [`Corrupt`]: TransportErrorKind::Corrupt
    /// [`Desync`]: TransportErrorKind::Desync
    pub fn kind(&self) -> TransportErrorKind {
        match self {
            FrameError::Truncated { .. } | FrameError::CrcMismatch { .. } => {
                TransportErrorKind::Corrupt
            }
            _ => TransportErrorKind::Desync,
        }
    }
}

/// Encode one frame. `phase` must be 0 for control frames.
pub fn encode(
    kind: FrameKind,
    phase: u8,
    src: u16,
    dst: u16,
    seq: u32,
    step: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(kind as u8);
    out.push(phase);
    out.extend_from_slice(&src.to_le_bytes());
    out.extend_from_slice(&dst.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encode a data frame for `tag`.
pub fn encode_data(src: u16, dst: u16, tag: Tag, step: u64, payload: &[u8]) -> Vec<u8> {
    encode(
        FrameKind::Data,
        tag.phase as u8,
        src,
        dst,
        tag.seq,
        step,
        payload,
    )
}

fn rd_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(b[at..at + 2].try_into().unwrap())
}

fn rd_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn rd_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Validate the fixed header prefix of a frame. Used by the streaming
/// reader to learn how many payload bytes to expect *before* the whole
/// frame is in memory; [`decode`] reuses it for whole-buffer decoding.
pub fn decode_header(buf: &[u8]) -> Result<FrameHeader, FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            need: HEADER_LEN,
            have: buf.len(),
        });
    }
    let magic = rd_u32(buf, 0);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = rd_u16(buf, 4);
    if version != PROTO_VERSION {
        return Err(FrameError::VersionMismatch {
            got: version,
            want: PROTO_VERSION,
        });
    }
    let kind = FrameKind::from_u8(buf[6]).ok_or(FrameError::BadKind(buf[6]))?;
    let phase = buf[7];
    if kind == FrameKind::Data && Phase::from_u8(phase).is_none() {
        return Err(FrameError::BadPhase(phase));
    }
    let len = rd_u32(buf, 24);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    Ok(FrameHeader {
        kind,
        phase,
        src: rd_u16(buf, 8),
        dst: rd_u16(buf, 10),
        seq: rd_u32(buf, 12),
        step: rd_u64(buf, 16),
        len,
    })
}

/// Decode one complete frame from `buf`, verifying structure and the
/// trailing CRC. Returns the header and a copy of the payload.
pub fn decode(buf: &[u8]) -> Result<(FrameHeader, Vec<u8>), FrameError> {
    let h = decode_header(buf)?;
    let total = HEADER_LEN + h.len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    let body = &buf[..HEADER_LEN + h.len as usize];
    let want = rd_u32(buf, HEADER_LEN + h.len as usize);
    let got = crc32(body);
    if got != want {
        return Err(FrameError::CrcMismatch { got, want });
    }
    Ok((h, buf[HEADER_LEN..HEADER_LEN + h.len as usize].to_vec()))
}

/// Verify the trailing CRC of a frame whose header already validated
/// and whose payload has been read off a stream.
pub fn check_crc(header_and_payload: &[u8], trailer: [u8; 4]) -> Result<(), FrameError> {
    let want = u32::from_le_bytes(trailer);
    let got = crc32(header_and_payload);
    if got != want {
        return Err(FrameError::CrcMismatch { got, want });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let tag = Tag {
            phase: Phase::Sum,
            seq: 91,
        };
        let frame = encode_data(2, 5, tag, 1234, &[7, 8, 9]);
        let (h, payload) = decode(&frame).unwrap();
        assert_eq!(h.kind, FrameKind::Data);
        assert_eq!((h.src, h.dst, h.seq, h.step, h.len), (2, 5, 91, 1234, 3));
        assert_eq!(h.tag(), Some(tag));
        assert_eq!(payload, vec![7, 8, 9]);
    }

    #[test]
    fn control_frames_have_no_tag() {
        let frame = encode(FrameKind::Hello, 0, 1, 0, 0, 0, &[1]);
        let (h, _) = decode(&frame).unwrap();
        assert_eq!(h.kind, FrameKind::Hello);
        assert_eq!(h.tag(), None);
    }

    #[test]
    fn metrics_frames_roundtrip() {
        let payload = br#"{"rank":3,"step":40}"#;
        let frame = encode(FrameKind::Metrics, 0, 3, u16::MAX, 7, 40, payload);
        let (h, body) = decode(&frame).unwrap();
        assert_eq!(h.kind, FrameKind::Metrics);
        assert_eq!((h.src, h.seq, h.step), (3, 7, 40));
        assert_eq!(h.tag(), None);
        assert_eq!(body, payload);
    }
}
