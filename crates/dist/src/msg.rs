//! Little-endian binary framing for transport payloads.
//!
//! Frames are built from three primitives (`u32`, `u64`, `f64`) so the
//! wire format is trivially portable and the float payloads round-trip
//! bit-exactly (`to_le_bytes`/`from_le_bytes` preserve every bit).
//!
//! Every frame the distributed runtime puts on the wire is *sealed*: a
//! CRC-32 of the body is appended ([`seal`]) and verified on receive
//! ([`unseal`]). A failed check is a recoverable [`FrameCorrupt`] — the
//! comm layer retries the receive (the fault-injection transport
//! redelivers the pristine payload, a real link layer would retransmit)
//! instead of applying corrupted physics data.

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64s(buf: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        put_f64(buf, *v);
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `data` (IEEE polynomial, as used by zlib/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The trailing CRC of a received frame did not match its body, or the
/// frame was too short to carry one — the payload was corrupted in
/// flight and must not be applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameCorrupt;

impl std::fmt::Display for FrameCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame failed CRC-32 integrity check")
    }
}

impl std::error::Error for FrameCorrupt {}

/// Append the CRC-32 of the frame body, making the frame self-checking.
pub fn seal(frame: &mut Vec<u8>) {
    let c = crc32(frame);
    put_u32(frame, c);
}

/// Verify and strip a trailing CRC-32 appended by [`seal`], leaving the
/// original body in place. Returns [`FrameCorrupt`] on any mismatch.
pub fn unseal(frame: &mut Vec<u8>) -> Result<(), FrameCorrupt> {
    if frame.len() < 4 {
        return Err(FrameCorrupt);
    }
    let body_len = frame.len() - 4;
    let want = u32::from_le_bytes(frame[body_len..].try_into().unwrap());
    if crc32(&frame[..body_len]) != want {
        return Err(FrameCorrupt);
    }
    frame.truncate(body_len);
    Ok(())
}

/// Cursor over a received frame; every accessor panics on truncation
/// (a malformed frame is a protocol bug, not a recoverable condition —
/// corruption is already excluded by the CRC seal).
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn u32(&mut self) -> u32 {
        let b: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().unwrap();
        self.pos += 4;
        u32::from_le_bytes(b)
    }

    pub fn u64(&mut self) -> u64 {
        let b: [u8; 8] = self.buf[self.pos..self.pos + 8].try_into().unwrap();
        self.pos += 8;
        u64::from_le_bytes(b)
    }

    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    pub fn f64s_into(&mut self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_exact() {
        let vals = [0.0, -0.0, 1.5e-300, f64::MIN_POSITIVE, -3.25, 1e308];
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_f64s(&mut buf, &vals);
        put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), 7);
        let mut back = Vec::new();
        r.f64s_into(vals.len(), &mut back);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.u64(), u64::MAX);
        assert!(r.is_empty());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_roundtrip_and_detects_corruption() {
        let mut frame = Vec::new();
        put_u32(&mut frame, 3);
        put_f64s(&mut frame, &[1.5, -2.25, 1e-300]);
        let body = frame.clone();
        seal(&mut frame);
        assert_eq!(frame.len(), body.len() + 4);
        let mut good = frame.clone();
        unseal(&mut good).unwrap();
        assert_eq!(good, body);
        // Any single flipped bit anywhere in the sealed frame trips.
        for pos in [0, 7, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x40;
            assert_eq!(unseal(&mut bad), Err(FrameCorrupt), "flip at {pos}");
        }
        let mut short = vec![1u8, 2, 3];
        assert_eq!(unseal(&mut short), Err(FrameCorrupt));
    }
}
