//! Little-endian binary framing for transport payloads.
//!
//! Frames are built from three primitives (`u32`, `u64`, `f64`) so the
//! wire format is trivially portable and the float payloads round-trip
//! bit-exactly (`to_le_bytes`/`from_le_bytes` preserve every bit).

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64s(buf: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        put_f64(buf, *v);
    }
}

/// Cursor over a received frame; every accessor panics on truncation
/// (a malformed frame is a protocol bug, not a recoverable condition).
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn u32(&mut self) -> u32 {
        let b: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().unwrap();
        self.pos += 4;
        u32::from_le_bytes(b)
    }

    pub fn u64(&mut self) -> u64 {
        let b: [u8; 8] = self.buf[self.pos..self.pos + 8].try_into().unwrap();
        self.pos += 8;
        u64::from_le_bytes(b)
    }

    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    pub fn f64s_into(&mut self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_exact() {
        let vals = [0.0, -0.0, 1.5e-300, f64::MIN_POSITIVE, -3.25, 1e308];
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_f64s(&mut buf, &vals);
        put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), 7);
        let mut back = Vec::new();
        r.f64s_into(vals.len(), &mut back);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.u64(), u64::MAX);
        assert!(r.is_empty());
    }
}
