//! Out-of-process transport: a Unix-domain-socket (or TCP loopback)
//! process mesh speaking the [`crate::frame`] format.
//!
//! **Topology.** Rank `r` listens at a generation-suffixed address
//! (`dir/g{gen}.r{r}.sock` for UDS, `base_port + gen·64 + r` for TCP);
//! for every pair `(a, b)` with `a < b`, rank `b` connects to rank `a`'s
//! listener. Each duplex connection carries exactly two logical message
//! streams — `a → b` frames written by `a`, `b → a` frames written by
//! `b` — which reproduces the channel-per-ordered-pair semantics of the
//! in-process [`MemEndpoint`] mesh exactly. Listener sockets are closed
//! (and UDS paths unlinked) as soon as the mesh is fully connected, so a
//! healthy run leaves no socket files behind. The generation suffix lets
//! an elastic resize build a fresh mesh while the old one drains.
//!
//! **Handshake.** A connector opens with a `Hello` frame carrying its
//! rank and a 16-byte payload (job nonce, rank count, mesh generation);
//! the acceptor validates all three against its own configuration plus
//! the frame layer's magic and protocol version, pins the claimed rank
//! (in range, above the acceptor, not a duplicate), and answers
//! `HelloAck` with the mirrored payload. Neither side sends data until
//! the ack round-trips, so a mis-wired, stale-generation, or
//! version-skewed peer is rejected before any physics bytes move.
//!
//! **No write deadlock.** Every connection owns a background writer
//! thread fed by an unbounded queue: `send` never blocks on a kernel
//! socket buffer, so the step loop's all-to-all bursts (including bulk
//! migration frames far larger than a socket buffer) cannot deadlock two
//! ranks each stuck in `write` waiting for the other to read. Wire
//! byte/flush counters are charged at enqueue time, which keeps them
//! deterministic. Dropping the connection joins the writer, flushing
//! every queued frame first.
//!
//! **Process mode.** [`ProcEndpoint`] runs the replicated-driver scheme
//! (DESIGN.md §15): every `mrpic_rank` process steps the full
//! deterministic simulation with all N rank threads, but each message
//! edge touching the process's *own* rank `R` crosses a real socket —
//! endpoint `R`'s sends are mirrored onto the wire, and every local send
//! *into* `R` is dropped so endpoint `R`'s receives read the
//! authoritative bytes from the owning process instead. Wire schedule ≡
//! mpsc schedule, and rank `R`'s state genuinely depends on remote
//! bytes, while `DistComm` runs unchanged on top.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::frame::{
    self, decode_header, FrameError, FrameHeader, FrameKind, HEADER_LEN, TRAILER_LEN,
};
use crate::msg::{put_u32, put_u64, Reader};
use crate::transport::{
    mem_transport_with_timeout, Endpoint, MemEndpoint, Tag, TransportError, TransportErrorKind,
    DEFAULT_RECV_TIMEOUT,
};

/// How long mesh construction waits for peers to appear and answer the
/// handshake before giving up. Generous: process spawn plus a cold
/// filesystem is still far below this.
const SETUP_TIMEOUT: Duration = Duration::from_secs(30);

/// Physical wire of the mesh.
#[derive(Clone, Debug)]
pub enum WireKind {
    /// Unix-domain sockets under `dir` (created if missing).
    Uds { dir: PathBuf },
    /// TCP on 127.0.0.1; rank `r` of generation `g` listens on
    /// `base_port + g·64 + r` (so at most 64 ranks per generation).
    Tcp { base_port: u16 },
}

/// Everything a rank needs to (re)build its socket mesh.
#[derive(Clone, Debug)]
pub struct MeshCfg {
    pub wire: WireKind,
    pub nranks: usize,
    /// Job identity: both handshake sides must present the same nonce,
    /// so a stray process from another run cannot join the mesh.
    pub nonce: u64,
    /// Mesh generation, bumped on every elastic resize; listeners and
    /// handshakes are generation-scoped so old and new meshes never mix.
    pub generation: u32,
    pub recv_timeout: Duration,
}

impl MeshCfg {
    pub fn uds(dir: impl Into<PathBuf>, nranks: usize, nonce: u64) -> Self {
        Self {
            wire: WireKind::Uds { dir: dir.into() },
            nranks,
            nonce,
            generation: 0,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    pub fn tcp(base_port: u16, nranks: usize, nonce: u64) -> Self {
        Self {
            wire: WireKind::Tcp { base_port },
            nranks,
            nonce,
            generation: 0,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    fn uds_path(&self, rank: usize) -> PathBuf {
        match &self.wire {
            WireKind::Uds { dir } => dir.join(format!("g{}.r{}.sock", self.generation, rank)),
            WireKind::Tcp { .. } => unreachable!("uds_path on tcp mesh"),
        }
    }

    fn tcp_port(&self, rank: usize) -> u16 {
        match &self.wire {
            WireKind::Tcp { base_port } => base_port
                .wrapping_add((self.generation as u16).wrapping_mul(64))
                .wrapping_add(rank as u16),
            WireKind::Uds { .. } => unreachable!("tcp_port on uds mesh"),
        }
    }

    /// The 16-byte handshake payload both sides must agree on.
    fn hs_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(16);
        put_u64(&mut p, self.nonce);
        put_u32(&mut p, self.nranks as u32);
        put_u32(&mut p, self.generation);
        p
    }
}

enum WireStream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl WireStream {
    fn try_clone(&self) -> io::Result<WireStream> {
        Ok(match self {
            WireStream::Uds(s) => WireStream::Uds(s.try_clone()?),
            WireStream::Tcp(s) => WireStream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Uds(s) => s.set_read_timeout(t),
            WireStream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            WireStream::Uds(s) => s.set_nonblocking(nb),
            WireStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Uds(s) => s.read(buf),
            WireStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Uds(s) => s.write(buf),
            WireStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Uds(s) => s.flush(),
            WireStream::Tcp(s) => s.flush(),
        }
    }
}

/// Listener half; dropping it unlinks the UDS path.
enum WireListener {
    Uds(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl WireListener {
    fn accept(&self) -> io::Result<WireStream> {
        match self {
            WireListener::Uds(l, _) => l.accept().map(|(s, _)| WireStream::Uds(s)),
            WireListener::Tcp(l) => l.accept().map(|(s, _)| WireStream::Tcp(s)),
        }
    }
}

impl Drop for WireListener {
    fn drop(&mut self) {
        if let WireListener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Why a framed read failed.
enum RecvFail {
    Frame(FrameError),
    TimedOut(Duration),
    Eof,
    Io(io::Error),
}

/// The read half of one connection, with a carry buffer for bytes read
/// past the current frame boundary (stream reads are not frame-aligned).
struct ConnReader {
    stream: WireStream,
    buf: Vec<u8>,
}

impl ConnReader {
    fn new(stream: WireStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// Read one complete, CRC-verified frame, waiting at most `timeout`.
    fn read_frame(&mut self, timeout: Duration) -> Result<(FrameHeader, Vec<u8>), RecvFail> {
        let t0 = Instant::now();
        loop {
            if self.buf.len() >= HEADER_LEN {
                let h = decode_header(&self.buf).map_err(RecvFail::Frame)?;
                let total = HEADER_LEN + h.len as usize + TRAILER_LEN;
                if self.buf.len() >= total {
                    let frame_bytes: Vec<u8> = self.buf.drain(..total).collect();
                    let (h, payload) = frame::decode(&frame_bytes).map_err(RecvFail::Frame)?;
                    return Ok((h, payload));
                }
            }
            let waited = t0.elapsed();
            let Some(remaining) = timeout.checked_sub(waited) else {
                return Err(RecvFail::TimedOut(waited));
            };
            if self
                .stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .is_err()
            {
                return Err(RecvFail::Eof);
            }
            let mut tmp = [0u8; 64 * 1024];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Err(RecvFail::Eof),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvFail::Io(e)),
            }
        }
    }
}

/// One fully handshaken connection: a carry-buffered reader plus a
/// background writer thread draining an unbounded frame queue.
pub struct PeerConn {
    reader: ConnReader,
    tx: Option<Sender<Vec<u8>>>,
    writer: Option<JoinHandle<()>>,
}

impl PeerConn {
    fn new(reader: ConnReader) -> io::Result<Self> {
        let mut wstream = reader.stream.try_clone()?;
        wstream.set_nonblocking(false)?;
        let (tx, rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = channel();
        let writer = std::thread::spawn(move || {
            // A write error means the peer is gone; the receive side of
            // whoever still needs its bytes reports the loss with full
            // context, so the writer just stops.
            while let Ok(f) = rx.recv() {
                if wstream.write_all(&f).is_err() {
                    return;
                }
            }
            let _ = wstream.flush();
        });
        Ok(Self {
            reader,
            tx: Some(tx),
            writer: Some(writer),
        })
    }

    fn enqueue(&self, frame_bytes: Vec<u8>) {
        if let Some(tx) = &self.tx {
            // A closed queue means the writer saw the peer die; the next
            // recv involving this peer reports it.
            let _ = tx.send(frame_bytes);
        }
    }
}

impl Drop for PeerConn {
    fn drop(&mut self) {
        // Close the queue, then join: every enqueued frame is flushed to
        // the kernel before the connection (or the process) goes away.
        self.tx.take();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

fn setup_err(ctx: &str, f: RecvFail) -> io::Error {
    let msg = match f {
        RecvFail::Frame(e) => format!("{ctx}: {e}"),
        RecvFail::TimedOut(w) => format!("{ctx}: timed out after {} ms", w.as_millis()),
        RecvFail::Eof => format!("{ctx}: peer closed the connection"),
        RecvFail::Io(e) => return io::Error::new(e.kind(), format!("{ctx}: {e}")),
    };
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn listen(cfg: &MeshCfg, rank: usize) -> io::Result<WireListener> {
    match &cfg.wire {
        WireKind::Uds { dir } => {
            std::fs::create_dir_all(dir)?;
            let path = cfg.uds_path(rank);
            let _ = std::fs::remove_file(&path);
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            Ok(WireListener::Uds(l, path))
        }
        WireKind::Tcp { .. } => {
            let l = TcpListener::bind(("127.0.0.1", cfg.tcp_port(rank)))?;
            l.set_nonblocking(true)?;
            Ok(WireListener::Tcp(l))
        }
    }
}

/// Connect to `rank`'s listener, retrying until it exists or the
/// deadline passes (peer processes start at their own pace).
fn connect_retry(cfg: &MeshCfg, rank: usize, deadline: Instant) -> io::Result<WireStream> {
    loop {
        let r = match &cfg.wire {
            WireKind::Uds { .. } => UnixStream::connect(cfg.uds_path(rank)).map(WireStream::Uds),
            WireKind::Tcp { .. } => {
                TcpStream::connect(("127.0.0.1", cfg.tcp_port(rank))).map(|s| {
                    let _ = s.set_nodelay(true);
                    WireStream::Tcp(s)
                })
            }
        };
        match r {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("connecting to rank {rank}: {e}"),
                ))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Connector half of the handshake: send `Hello`, await `HelloAck`.
fn handshake_connect(
    stream: WireStream,
    cfg: &MeshCfg,
    my_rank: usize,
    peer: usize,
) -> io::Result<ConnReader> {
    let mut stream = stream;
    stream.write_all(&frame::encode(
        FrameKind::Hello,
        0,
        my_rank as u16,
        peer as u16,
        0,
        0,
        &cfg.hs_payload(),
    ))?;
    let mut rd = ConnReader::new(stream);
    let (h, payload) = rd
        .read_frame(SETUP_TIMEOUT)
        .map_err(|f| setup_err("awaiting HelloAck", f))?;
    if h.kind != FrameKind::HelloAck || h.src as usize != peer || h.dst as usize != my_rank {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bad HelloAck from rank {peer}: kind {:?}, src {}, dst {}",
                h.kind, h.src, h.dst
            ),
        ));
    }
    check_hs_payload(cfg, &payload, peer)?;
    Ok(rd)
}

/// Acceptor half: read `Hello`, pin the claimed rank, answer `HelloAck`.
fn handshake_accept(
    stream: WireStream,
    cfg: &MeshCfg,
    my_rank: usize,
) -> io::Result<(usize, ConnReader)> {
    stream.set_nonblocking(false)?;
    let mut rd = ConnReader::new(stream);
    let (h, payload) = rd
        .read_frame(SETUP_TIMEOUT)
        .map_err(|f| setup_err("awaiting Hello", f))?;
    let peer = h.src as usize;
    if h.kind != FrameKind::Hello || h.dst as usize != my_rank {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bad Hello: kind {:?}, src {}, dst {} (I am rank {my_rank})",
                h.kind, h.src, h.dst
            ),
        ));
    }
    // Only higher ranks dial us, so the claimed identity must sit in
    // (my_rank, nranks).
    if peer <= my_rank || peer >= cfg.nranks {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "peer claims invalid rank {peer} (I am {my_rank} of {})",
                cfg.nranks
            ),
        ));
    }
    check_hs_payload(cfg, &payload, peer)?;
    rd.stream.write_all(&frame::encode(
        FrameKind::HelloAck,
        0,
        my_rank as u16,
        peer as u16,
        0,
        0,
        &cfg.hs_payload(),
    ))?;
    Ok((peer, rd))
}

fn check_hs_payload(cfg: &MeshCfg, payload: &[u8], peer: usize) -> io::Result<()> {
    if payload.len() != 16 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "handshake payload from rank {peer} is {} bytes, want 16",
                payload.len()
            ),
        ));
    }
    let mut rd = Reader::new(payload);
    let (nonce, nranks, generation) = (rd.u64(), rd.u32() as usize, rd.u32());
    if nonce != cfg.nonce || nranks != cfg.nranks || generation != cfg.generation {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "handshake mismatch with rank {peer}: nonce {nonce:#x}/{:#x}, nranks {nranks}/{}, generation {generation}/{}",
                cfg.nonce, cfg.nranks, cfg.generation
            ),
        ));
    }
    Ok(())
}

/// Build rank `my_rank`'s connections to every peer of the mesh: dial
/// every lower rank, accept every higher one, handshake each. On return
/// the listener is closed and its UDS path unlinked.
pub fn connect_peers(cfg: &MeshCfg, my_rank: usize) -> io::Result<Vec<Option<PeerConn>>> {
    assert!(
        my_rank < cfg.nranks,
        "rank {my_rank} outside mesh of {}",
        cfg.nranks
    );
    assert!(cfg.nranks <= u16::MAX as usize, "rank ids must fit u16");
    let listener = listen(cfg, my_rank)?;
    let deadline = Instant::now() + SETUP_TIMEOUT;
    let mut peers: Vec<Option<PeerConn>> = (0..cfg.nranks).map(|_| None).collect();
    for (p, slot) in peers.iter_mut().enumerate().take(my_rank) {
        let stream = connect_retry(cfg, p, deadline)?;
        let rd = handshake_connect(stream, cfg, my_rank, p)?;
        *slot = Some(PeerConn::new(rd)?);
    }
    let expect = cfg.nranks - 1 - my_rank;
    let mut accepted = 0;
    while accepted < expect {
        match listener.accept() {
            Ok(stream) => {
                let (peer, rd) = handshake_accept(stream, cfg, my_rank)?;
                if peers[peer].is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("duplicate connection claiming rank {peer}"),
                    ));
                }
                peers[peer] = Some(PeerConn::new(rd)?);
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rank {my_rank}: only {accepted}/{expect} peers connected"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(peers)
}

/// An [`Endpoint`] whose every peer edge is a real socket connection.
pub struct SocketEndpoint {
    rank: usize,
    nranks: usize,
    step: u64,
    recv_timeout: Duration,
    peers: Vec<Option<PeerConn>>,
    wire_bytes: u64,
    wire_flushes: u64,
}

impl SocketEndpoint {
    fn new(rank: usize, cfg: &MeshCfg, peers: Vec<Option<PeerConn>>) -> Self {
        Self {
            rank,
            nranks: cfg.nranks,
            step: 0,
            recv_timeout: cfg.recv_timeout,
            peers,
            wire_bytes: 0,
            wire_flushes: 0,
        }
    }

    fn wire_send(&mut self, dst: usize, tag: Tag, payload: &[u8]) {
        let f = frame::encode_data(self.rank as u16, dst as u16, tag, self.step, payload);
        self.wire_bytes += f.len() as u64;
        self.wire_flushes += 1;
        self.peers[dst]
            .as_ref()
            .expect("no connection to self")
            .enqueue(f);
    }

    fn wire_recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError> {
        let (rank, step, timeout) = (self.rank, self.step, self.recv_timeout);
        let conn = self.peers[src].as_mut().expect("no connection to self");
        let (h, payload) = match conn.reader.read_frame(timeout) {
            Ok(ok) => ok,
            Err(RecvFail::TimedOut(w)) => {
                return Err(
                    TransportError::new(TransportErrorKind::Timeout, rank, src, tag, step)
                        .with_wait(w),
                )
            }
            Err(RecvFail::Eof) | Err(RecvFail::Io(_)) => {
                return Err(TransportError::new(
                    TransportErrorKind::PeerLost,
                    rank,
                    src,
                    tag,
                    step,
                ))
            }
            Err(RecvFail::Frame(fe)) => {
                return Err(TransportError::new(fe.kind(), rank, src, tag, step))
            }
        };
        if h.kind != FrameKind::Data || h.src as usize != src || h.dst as usize != rank {
            return Err(TransportError::new(
                TransportErrorKind::Desync,
                rank,
                src,
                tag,
                step,
            ));
        }
        match h.tag() {
            Some(got) if got == tag => Ok(payload),
            // Mirror MemEndpoint: a desync error carries the tag
            // actually received.
            Some(got) => Err(TransportError::new(
                TransportErrorKind::Desync,
                rank,
                src,
                got,
                step,
            )),
            None => Err(TransportError::new(
                TransportErrorKind::Desync,
                rank,
                src,
                tag,
                step,
            )),
        }
    }
}

impl Endpoint for SocketEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) -> Result<(), TransportError> {
        self.wire_send(dst, tag, &payload);
        Ok(())
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError> {
        self.wire_recv(src, tag)
    }

    fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    fn take_wire_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.wire_bytes),
            std::mem::take(&mut self.wire_flushes),
        )
    }
}

/// Build a full socket mesh *within one process*: `nranks` endpoints,
/// every pair connected by a real socket. Used by the cross-transport
/// equivalence tests, where the step loop's rank threads exchange every
/// byte through the kernel while staying in one address space for
/// bitwise state comparison.
pub fn socket_mesh(cfg: &MeshCfg) -> io::Result<Vec<SocketEndpoint>> {
    let eps: io::Result<Vec<SocketEndpoint>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.nranks)
            .map(|r| s.spawn(move || connect_peers(cfg, r).map(|p| SocketEndpoint::new(r, cfg, p))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    eps
}

/// Replicated-driver endpoint for process mode (see module docs): the
/// full local mpsc mesh, with the edges touching this *process's* rank
/// substituted by the real socket connections.
pub struct ProcEndpoint {
    inner: MemEndpoint,
    /// The rank this OS process is authoritative for.
    my_rank: usize,
    /// Real connections; present only on the endpoint whose thread rank
    /// equals `my_rank`.
    wire: Option<SocketEndpoint>,
}

impl Endpoint for ProcEndpoint {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Vec<u8>) -> Result<(), TransportError> {
        if let Some(wire) = &mut self.wire {
            // This process's own rank: the send is authoritative. Put it
            // on the wire for the process owning `dst`, and deliver the
            // local copy so this replica's thread `dst` advances too.
            wire.wire_send(dst, tag, &payload);
            return self.inner.send(dst, tag, payload);
        }
        if dst == self.my_rank {
            // A local replica thread sending *into* this process's rank:
            // drop the copy — the authoritative bytes arrive over the
            // socket from the process that owns the sender.
            return Ok(());
        }
        self.inner.send(dst, tag, payload)
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, TransportError> {
        if let Some(wire) = &mut self.wire {
            return wire.wire_recv(src, tag);
        }
        self.inner.recv(src, tag)
    }

    fn set_step(&mut self, step: u64) {
        self.inner.set_step(step);
        if let Some(wire) = &mut self.wire {
            wire.set_step(step);
        }
    }

    fn take_wire_counters(&mut self) -> (u64, u64) {
        match &mut self.wire {
            Some(wire) => wire.take_wire_counters(),
            None => (0, 0),
        }
    }
}

/// Build the endpoint set of one `mrpic_rank` process: connect this
/// process's rank to its peers over sockets, and wrap the local mpsc
/// mesh with the substitution rules above.
pub fn proc_transport(cfg: &MeshCfg, my_rank: usize) -> io::Result<Vec<ProcEndpoint>> {
    let peers = connect_peers(cfg, my_rank)?;
    let mut wire = Some(SocketEndpoint::new(my_rank, cfg, peers));
    Ok(mem_transport_with_timeout(cfg.nranks, cfg.recv_timeout)
        .into_iter()
        .map(|inner| {
            let w = if inner.rank() == my_rank {
                wire.take()
            } else {
                None
            };
            ProcEndpoint {
                inner,
                my_rank,
                wire: w,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Phase;

    fn uds_cfg(nranks: usize, tag: &str) -> MeshCfg {
        let dir = std::env::temp_dir().join(format!("mrpic-sock-{}-{tag}", std::process::id()));
        MeshCfg::uds(dir, nranks, 0xC0FFEE)
    }

    const T: Tag = Tag {
        phase: Phase::Fill,
        seq: 3,
    };

    #[test]
    fn socket_mesh_delivers_in_order_and_unlinks_paths() {
        let cfg = uds_cfg(3, "order");
        let mut eps = socket_mesh(&cfg).unwrap();
        // All listener paths are gone as soon as the mesh is up.
        for r in 0..3 {
            assert!(!cfg.uds_path(r).exists(), "socket file left behind");
        }
        let (a, rest) = eps.split_at_mut(1);
        a[0].send(1, T, vec![1]).unwrap();
        a[0].send(1, Tag { seq: 4, ..T }, vec![2, 2]).unwrap();
        a[0].send(2, T, vec![3]).unwrap();
        assert_eq!(rest[0].recv(0, T).unwrap(), vec![1]);
        assert_eq!(rest[0].recv(0, Tag { seq: 4, ..T }).unwrap(), vec![2, 2]);
        assert_eq!(rest[1].recv(0, T).unwrap(), vec![3]);
        let (b, f) = rest[1].take_wire_counters();
        assert_eq!((b, f), (0, 0), "rank 2 sent nothing");
        let (b, f) = a[0].take_wire_counters();
        assert_eq!(f, 3);
        assert!(b > 0);
    }

    #[test]
    fn socket_recv_timeout_reports_wait_and_seq() {
        let mut cfg = uds_cfg(2, "timeout");
        cfg.recv_timeout = Duration::from_millis(20);
        let mut eps = socket_mesh(&cfg).unwrap();
        eps[1].set_step(9);
        let e = eps[1].recv(0, T).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::Timeout);
        assert_eq!((e.rank, e.peer, e.seq, e.step), (1, 0, 3, 9));
        assert!(e.waited_ms >= 20, "waited_ms = {}", e.waited_ms);
        assert!(e.to_string().contains("outstanding seq 3"));
    }

    #[test]
    fn handshake_rejects_wrong_nonce() {
        let dir = std::env::temp_dir().join(format!("mrpic-sock-{}-nonce", std::process::id()));
        let good = MeshCfg::uds(&dir, 2, 1);
        let mut bad = good.clone();
        bad.nonce = 2;
        let r = std::thread::scope(|s| {
            let a = s.spawn(|| connect_peers(&good, 0));
            let b = s.spawn(|| connect_peers(&bad, 1));
            (a.join().unwrap(), b.join().unwrap())
        });
        assert!(
            r.0.is_err() || r.1.is_err(),
            "nonce mismatch must not connect"
        );
    }

    #[test]
    fn dropped_socket_peer_is_reported_not_panicked() {
        let mut cfg = uds_cfg(2, "drop");
        cfg.recv_timeout = Duration::from_secs(5);
        let mut eps = socket_mesh(&cfg).unwrap();
        let ep1 = eps.pop().unwrap();
        drop(ep1);
        let e = eps[0].recv(1, T).unwrap_err();
        assert_eq!(e.kind, TransportErrorKind::PeerLost);
    }

    #[test]
    fn tcp_mesh_roundtrips() {
        let cfg = MeshCfg::tcp(39310, 2, 7);
        let mut eps = socket_mesh(&cfg).unwrap();
        let (a, b) = eps.split_at_mut(1);
        a[0].send(1, T, vec![9; 100_000]).unwrap();
        b[0].send(0, Tag { seq: 4, ..T }, vec![5]).unwrap();
        assert_eq!(b[0].recv(0, T).unwrap(), vec![9; 100_000]);
        assert_eq!(a[0].recv(1, Tag { seq: 4, ..T }).unwrap(), vec![5]);
    }
}
