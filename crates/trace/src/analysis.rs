//! Trace analyses: aggregate span tables, the paper's rank-imbalance
//! metric, per-pair communication matrix, and a critical-path summary
//! from matched send/recv spans.

use std::collections::BTreeMap;

use crate::{SpanRec, Trace};

/// Aggregate statistics for all spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanAgg {
    pub name: String,
    pub count: u64,
    /// Wall seconds inside the span (children included).
    pub total_s: f64,
    /// Wall seconds minus direct children (the span's own work).
    pub self_s: f64,
}

/// Top-`n` span names by total time, with self time (total minus
/// direct children on the same thread track).
pub fn top_spans(trace: &Trace, n: usize) -> Vec<SpanAgg> {
    // Child time attribution needs parent links; rebuild them per track
    // with an end-time stack over begin-sorted spans.
    let mut order: Vec<usize> = (0..trace.spans.len()).collect();
    order.sort_by_key(|&i| {
        let s = &trace.spans[i];
        (s.tid, s.begin_ns, std::cmp::Reverse(s.end_ns))
    });
    let mut child_s = vec![0.0f64; trace.spans.len()];
    let mut stack: Vec<usize> = Vec::new(); // indices of open ancestors
    let mut cur_tid = None;
    for &i in &order {
        let s = &trace.spans[i];
        if cur_tid != Some(s.tid) {
            stack.clear();
            cur_tid = Some(s.tid);
        }
        while let Some(&top) = stack.last() {
            if trace.spans[top].end_ns <= s.begin_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&parent) = stack.last() {
            child_s[parent] += s.dur_s();
        }
        stack.push(i);
    }
    let mut agg: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        let e = agg.entry(&s.name).or_insert_with(|| SpanAgg {
            name: s.name.clone(),
            count: 0,
            total_s: 0.0,
            self_s: 0.0,
        });
        e.count += 1;
        e.total_s += s.dur_s();
        e.self_s += (s.dur_s() - child_s[i]).max(0.0);
    }
    let mut v: Vec<SpanAgg> = agg.into_values().collect();
    v.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));
    v.truncate(n);
    v
}

/// Busy seconds per rank: total duration of top-level (depth 0) spans
/// owned by each rank `>= 0`.
pub fn rank_busy_seconds(trace: &Trace) -> BTreeMap<i32, f64> {
    let mut busy: BTreeMap<i32, f64> = BTreeMap::new();
    for s in &trace.spans {
        if s.rank >= 0 && s.depth == 0 {
            *busy.entry(s.rank).or_default() += s.dur_s();
        }
    }
    busy
}

/// The paper's load-balance metric: max/mean of per-rank busy time.
/// `None` when fewer than two ranks appear in the trace.
pub fn imbalance(trace: &Trace) -> Option<f64> {
    let busy = rank_busy_seconds(trace);
    if busy.len() < 2 {
        return None;
    }
    let max = busy.values().fold(0.0f64, |a, &b| a.max(b));
    let mean = busy.values().sum::<f64>() / busy.len() as f64;
    (mean > 0.0).then(|| max / mean)
}

/// Per-pair payload bytes from `send` spans: `matrix[src][dst]`.
pub fn comm_matrix(trace: &Trace, nranks: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; nranks]; nranks];
    for s in &trace.spans {
        if s.name == "send" && s.rank >= 0 && (s.rank as usize) < nranks {
            let dst = s.arg0;
            if (0..nranks as i64).contains(&dst) && s.arg1 > 0 {
                m[s.rank as usize][dst as usize] += s.arg1 as u64;
            }
        }
    }
    m
}

/// Seconds each rank spent blocked in `recv_wait` spans — idle time a
/// cost-aware rebalance could reclaim.
pub fn recv_wait_seconds(trace: &Trace, nranks: usize) -> Vec<f64> {
    let mut w = vec![0.0f64; nranks];
    for s in &trace.spans {
        if s.name == "recv_wait" && s.rank >= 0 && (s.rank as usize) < nranks {
            w[s.rank as usize] += s.dur_s();
        }
    }
    w
}

/// Critical path through the message-passing execution DAG.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Length of the heaviest dependency chain (lower bound on wall
    /// time with perfect overlap everywhere else).
    pub total_s: f64,
    /// Wall-clock extent of the trace, for comparison.
    pub wall_s: f64,
    /// Chain seconds by span name (`compute` = inter-message gaps),
    /// heaviest first.
    pub by_name: Vec<(String, f64)>,
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    rank: usize,
    begin_ns: u64,
    end_ns: u64,
    /// (src, dst, order) for recv nodes, matched FIFO against sends.
    recv_key: Option<(usize, usize, usize)>,
    send_key: Option<(usize, usize, usize)>,
}

/// Build the per-rank dependency DAG from `send`/`recv` spans plus
/// synthetic `compute` nodes for the gaps between them, and run the
/// longest-path DP. Messages are matched FIFO per ordered (src, dst)
/// pair — the transport delivers in order, so the k-th receive from a
/// peer pairs with its k-th send.
pub fn critical_path(trace: &Trace) -> Option<CriticalPath> {
    let nranks = trace.nranks();
    if nranks == 0 {
        return None;
    }
    let t0 = trace.spans.iter().map(|s| s.begin_ns).min()?;
    // Comm spans per rank, in time order.
    let mut per_rank: Vec<Vec<&SpanRec>> = vec![Vec::new(); nranks];
    for s in &trace.spans {
        if (s.name == "send" || s.name == "recv") && s.rank >= 0 {
            let dst = s.arg0;
            if (0..nranks as i64).contains(&dst) {
                per_rank[s.rank as usize].push(s);
            }
        }
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut pair_seq: BTreeMap<(usize, usize, &str), usize> = BTreeMap::new();
    for (r, spans) in per_rank.iter_mut().enumerate() {
        spans.sort_by_key(|s| (s.begin_ns, s.end_ns));
        let mut cursor = t0;
        for s in spans.iter() {
            let peer = s.arg0 as usize;
            if s.begin_ns > cursor {
                nodes.push(Node {
                    name: "compute".to_string(),
                    rank: r,
                    begin_ns: cursor,
                    end_ns: s.begin_ns,
                    recv_key: None,
                    send_key: None,
                });
            }
            let (pair, kind) = if s.name == "send" {
                ((r, peer), "send")
            } else {
                ((peer, r), "recv")
            };
            let seq = pair_seq.entry((pair.0, pair.1, kind)).or_default();
            let key = (pair.0, pair.1, *seq);
            *seq += 1;
            nodes.push(Node {
                name: s.name.clone(),
                rank: r,
                begin_ns: s.begin_ns,
                end_ns: s.end_ns,
                recv_key: (s.name == "recv").then_some(key),
                send_key: (s.name == "send").then_some(key),
            });
            cursor = cursor.max(s.end_ns);
        }
    }
    if nodes.is_empty() {
        return None;
    }
    // Topological order: a node's predecessors (previous node on the
    // same rank; matched send for a recv) always end no later than it.
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by_key(|&i| (nodes[i].end_ns, nodes[i].begin_ns));
    let mut send_done: BTreeMap<(usize, usize, usize), (f64, usize)> = BTreeMap::new();
    let mut rank_last: Vec<Option<usize>> = vec![None; nranks];
    let mut completion = vec![0.0f64; nodes.len()];
    let mut pred = vec![usize::MAX; nodes.len()];
    for &i in &order {
        let n = &nodes[i];
        let mut ready = 0.0f64;
        let mut from = usize::MAX;
        if let Some(j) = rank_last[n.rank] {
            ready = completion[j];
            from = j;
        }
        if let Some(key) = n.recv_key {
            if let Some(&(done, j)) = send_done.get(&key) {
                if done > ready {
                    ready = done;
                    from = j;
                }
            }
        }
        let dur = (n.end_ns.saturating_sub(n.begin_ns)) as f64 * 1e-9;
        completion[i] = ready + dur;
        pred[i] = from;
        if let Some(key) = n.send_key {
            send_done.insert(key, (completion[i], i));
        }
        rank_last[n.rank] = Some(i);
    }
    let (mut cur, &total) = completion
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    let mut by_name: BTreeMap<String, f64> = BTreeMap::new();
    loop {
        let n = &nodes[cur];
        let dur = (n.end_ns.saturating_sub(n.begin_ns)) as f64 * 1e-9;
        *by_name.entry(n.name.clone()).or_default() += dur;
        if pred[cur] == usize::MAX {
            break;
        }
        cur = pred[cur];
    }
    let mut by_name: Vec<(String, f64)> = by_name.into_iter().collect();
    by_name.sort_by(|a, b| b.1.total_cmp(&a.1));
    Some(CriticalPath {
        total_s: total,
        wall_s: trace.wall_s(),
        by_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn mk(
        name: &str,
        rank: i32,
        tid: u32,
        b: u64,
        e: u64,
        depth: u32,
        a0: i64,
        a1: i64,
    ) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            rank,
            tid,
            begin_ns: b,
            end_ns: e,
            depth,
            arg0: a0,
            arg1: a1,
        }
    }

    #[test]
    fn self_time_excludes_direct_children() {
        let t = Trace {
            spans: vec![
                mk("step", -1, 0, 0, 1000, 0, -1, -1),
                mk("particle", -1, 0, 100, 600, 1, -1, -1),
                mk("maxwell", -1, 0, 600, 900, 1, -1, -1),
            ],
            dropped: 0,
        };
        let top = top_spans(&t, 10);
        let step = top.iter().find(|a| a.name == "step").unwrap();
        assert!((step.total_s - 1000e-9).abs() < 1e-15);
        assert!(
            (step.self_s - 200e-9).abs() < 1e-15,
            "self = {}",
            step.self_s
        );
    }

    #[test]
    fn comm_matrix_sums_send_bytes() {
        let t = Trace {
            spans: vec![
                mk("send", 0, 1, 0, 10, 0, 1, 100),
                mk("send", 0, 1, 20, 30, 0, 1, 50),
                mk("send", 1, 2, 5, 15, 0, 0, 7),
                mk("recv", 1, 2, 0, 20, 0, 0, -1),
            ],
            dropped: 0,
        };
        let m = comm_matrix(&t, 2);
        assert_eq!(m[0][1], 150);
        assert_eq!(m[1][0], 7);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let t = Trace {
            spans: vec![
                mk("fill", 0, 1, 0, 300, 0, -1, -1),
                mk("fill", 1, 2, 0, 100, 0, -1, -1),
            ],
            dropped: 0,
        };
        let r = imbalance(&t).unwrap();
        assert!((r - 1.5).abs() < 1e-12, "imbalance = {r}");
    }

    #[test]
    fn critical_path_crosses_matched_messages() {
        // rank 0: compute 100, send 10 -> rank 1 waits then recvs.
        // Chain: compute(100) + send(10) + recv(20) = 130ns, even though
        // rank 1's own timeline is only 60ns busy.
        let t = Trace {
            spans: vec![
                mk("compute_marker", -1, 0, 0, 1, 0, -1, -1), // pins t0 = 0
                mk("send", 0, 1, 100, 110, 0, 1, 64),
                mk("recv", 1, 2, 40, 120, 0, 0, 64),
            ],
            dropped: 0,
        };
        let cp = critical_path(&t).unwrap();
        // compute gap on rank 0 [0,100) + send 10ns + recv 80ns: the
        // recv's dependency chain runs through the send.
        let names: Vec<&str> = cp.by_name.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"recv"));
        assert!(names.contains(&"send"));
        assert!(names.contains(&"compute"));
        assert!(cp.total_s >= 190e-9 - 1e-15, "total = {}", cp.total_s);
    }

    #[test]
    fn recv_wait_attributes_to_the_waiting_rank() {
        let t = Trace {
            spans: vec![
                mk("recv_wait", 1, 2, 0, 500, 1, 0, -1),
                mk("recv_wait", 1, 2, 600, 700, 1, 0, -1),
            ],
            dropped: 0,
        };
        let w = recv_wait_seconds(&t, 2);
        assert!((w[1] - 600e-9).abs() < 1e-15);
        assert_eq!(w[0], 0.0);
    }
}
