//! Chrome tracing / Perfetto JSON export and import.
//!
//! The export is the classic `traceEvents` JSON array understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one complete
//! (`"ph":"X"`) event per span with microsecond timestamps, one *pid*
//! per rank (pid 0 is the driver / serial phases, pid `r+1` is rank
//! `r`), one *tid* per worker thread, plus `process_name`/`thread_name`
//! metadata so tracks are labeled. Span metadata travels in `args`
//! (`rank`, `arg0`, `arg1` — box id for kernel spans, peer/bytes for
//! `send`/`recv` spans), which is how [`parse`] reconstructs a
//! [`Trace`] losslessly modulo sub-nanosecond rounding.

use serde_json::Value;

use crate::{SpanRec, Trace};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn pid_of(rank: i32) -> u64 {
    (rank + 1).max(0) as u64
}

/// Serialize `trace` as Chrome-trace JSON.
pub fn export(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(trace.spans.len() + 16);
    // Label every (pid) and (pid, tid) track that appears.
    let mut pids: Vec<i32> = trace.spans.iter().map(|s| s.rank).collect();
    pids.sort_unstable();
    pids.dedup();
    for &rank in &pids {
        let label = if rank < 0 {
            "driver".to_string()
        } else {
            format!("rank {rank}")
        };
        events.push(obj(vec![
            ("ph", Value::Str("M".into())),
            ("name", Value::Str("process_name".into())),
            ("pid", Value::UInt(pid_of(rank))),
            ("args", obj(vec![("name", Value::Str(label))])),
        ]));
    }
    let mut tracks: Vec<(i32, u32)> = trace.spans.iter().map(|s| (s.rank, s.tid)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &(rank, tid) in &tracks {
        events.push(obj(vec![
            ("ph", Value::Str("M".into())),
            ("name", Value::Str("thread_name".into())),
            ("pid", Value::UInt(pid_of(rank))),
            ("tid", Value::UInt(tid as u64)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("worker-{tid}")))]),
            ),
        ]));
    }
    for s in &trace.spans {
        events.push(obj(vec![
            ("name", Value::Str(s.name.clone())),
            ("ph", Value::Str("X".into())),
            ("ts", Value::Float(s.begin_ns as f64 / 1e3)),
            (
                "dur",
                Value::Float(s.end_ns.saturating_sub(s.begin_ns) as f64 / 1e3),
            ),
            ("pid", Value::UInt(pid_of(s.rank))),
            ("tid", Value::UInt(s.tid as u64)),
            (
                "args",
                obj(vec![
                    ("rank", Value::Int(s.rank as i64)),
                    ("arg0", Value::Int(s.arg0)),
                    ("arg1", Value::Int(s.arg1)),
                ]),
            ),
        ]));
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
        ("droppedEvents", Value::UInt(trace.dropped)),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serializes")
}

/// Write `trace` as Chrome-trace JSON to `path`.
pub fn write(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export(trace))
}

/// Parse Chrome-trace JSON (as produced by [`export`]) back into a
/// [`Trace`]. Span nesting depth is recomputed from the intervals.
pub fn parse(text: &str) -> Result<Trace, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(Value::Array(evs)) => evs,
        _ => return Err("missing traceEvents array".to_string()),
    };
    let dropped = doc
        .get("droppedEvents")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let mut spans = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if ph != "X" {
            continue; // metadata and non-span phases
        }
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("X event without name")?
            .to_string();
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or("X event without ts")?;
        let dur = ev.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let pid = ev.get("pid").and_then(|v| v.as_i64()).unwrap_or(0);
        let tid = ev.get("tid").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
        let args = ev.get("args");
        let get_arg = |key: &str, fallback: i64| {
            args.and_then(|a| a.get(key))
                .and_then(|v| v.as_i64())
                .unwrap_or(fallback)
        };
        let rank = get_arg("rank", pid - 1) as i32;
        let begin_ns = (ts * 1e3).round() as u64;
        let end_ns = ((ts + dur) * 1e3).round() as u64;
        spans.push(SpanRec {
            name,
            rank,
            tid,
            begin_ns,
            end_ns,
            depth: 0,
            arg0: get_arg("arg0", -1),
            arg1: get_arg("arg1", -1),
        });
    }
    spans.sort_by_key(|s| (s.begin_ns, std::cmp::Reverse(s.end_ns)));
    recompute_depths(&mut spans);
    Ok(Trace { spans, dropped })
}

/// Assign nesting depth per thread track from interval containment
/// (spans must be sorted by begin, longest first on ties).
fn recompute_depths(spans: &mut [SpanRec]) {
    let mut open: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
    for s in spans {
        let stack = open.entry(s.tid).or_default();
        while let Some(&end) = stack.last() {
            if end <= s.begin_ns {
                stack.pop();
            } else {
                break;
            }
        }
        s.depth = stack.len() as u32;
        stack.push(s.end_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mk = |name: &str, rank, tid, b, e, depth, a0, a1| SpanRec {
            name: name.to_string(),
            rank,
            tid,
            begin_ns: b,
            end_ns: e,
            depth,
            arg0: a0,
            arg1: a1,
        };
        Trace {
            spans: vec![
                mk("step", -1, 0, 0, 10_000, 0, 0, -1),
                mk("particle", -1, 0, 1_000, 6_000, 1, -1, -1),
                mk("box", -1, 1, 1_200, 2_200, 0, 3, -1),
                mk("send", 0, 2, 2_000, 2_500, 0, 1, 4096),
                mk("recv", 1, 3, 2_100, 2_700, 0, 0, 4096),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn export_parse_round_trip_preserves_span_tree() {
        let t = sample_trace();
        let json = export(&t);
        let back = parse(&json).expect("round trip parses");
        assert_eq!(back.signature(), t.signature());
        assert_eq!(back.spans.len(), t.spans.len());
        assert_eq!(back.dropped, 0);
        back.check_nesting().expect("round trip nests");
        // Depths recomputed from intervals match the originals.
        for (a, b) in t.spans.iter().zip(back.spans.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.depth, b.depth, "span {}", a.name);
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.arg0, b.arg0);
            assert_eq!(a.arg1, b.arg1);
        }
    }

    #[test]
    fn export_labels_rank_tracks() {
        let json = export(&sample_trace());
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"driver\""));
        assert!(json.contains("\"rank 0\""));
        assert!(json.contains("\"rank 1\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"foo\": 1}").is_err());
    }
}
