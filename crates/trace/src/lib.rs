//! Low-overhead hierarchical span tracing for the MR-PIC runtime.
//!
//! The paper's load-balancing story (§IV: 3.8× from cost-aware knapsack
//! redistribution, +25% from PML co-location) rests on knowing *where a
//! step's time goes* — per box, per message, per rank. This crate is the
//! measurement layer: RAII [`SpanGuard`]s (created by the [`span!`]
//! macro) append begin/end events to a per-thread lock-free ring with
//! monotonic timestamps; a global collector drains the rings into a
//! [`Trace`] of nested spans that the exporters ([`chrome`]) and
//! analyses ([`analysis`]) consume. A [`metrics`] registry of counters
//! and log2-bucket histograms rides along for scalar telemetry (message
//! bytes, retry counts, recv-wait, per-box kernel times).
//!
//! # Overhead budget
//!
//! - **Disabled** (default): `span!` costs one relaxed atomic load and
//!   constructs an inert guard — no timestamp, no allocation, no ring
//!   access. Single-digit nanoseconds; safe to leave in hot kernels.
//! - **Enabled**: two `Instant` reads plus two single-producer ring
//!   pushes per span (~tens of nanoseconds). Spans are placed at phase,
//!   box, and message granularity — never per particle — so a traced
//!   step stays within a few percent of an untraced one (enforced by
//!   the `step_loop` bench's `trace` block).
//!
//! # Threading model
//!
//! Each thread lazily registers one fixed-capacity single-producer /
//! single-consumer ring. The producing thread pushes without locks; the
//! collector drains under a registry mutex (it is the only consumer).
//! When a thread exits — the distributed runtime spawns short-lived rank
//! threads per communication phase, and the rayon shim spawns scoped
//! workers per parallel loop — its TLS destructor flushes the ring into
//! the collected buffer and recycles it through a free list, so thread
//! churn neither leaks rings nor scrambles event order. A full ring
//! drops new events (counted in [`Trace::dropped`]) rather than block.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod analysis;
pub mod chrome;
pub mod metrics;

pub use metrics::{counter, histogram, registry_snapshot, HistSummary, RegistrySnapshot};

/// Events per thread ring. At phase/box/message granularity a rank
/// produces a few hundred events per step, so this holds tens of steps
/// between [`collect`] calls; overflow drops (and counts) rather than
/// blocking the producer.
const RING_CAP: usize = 1 << 13;

const KIND_BEGIN: u8 = 0;
const KIND_END: u8 = 1;

/// One begin/end record in a thread's ring. `tid` is stamped at push
/// time from the owning ring so the collected (interleaved) buffer can
/// still be demultiplexed per thread track.
#[derive(Clone, Copy, Debug)]
struct RawEvent {
    t_ns: u64,
    name: &'static str,
    rank: i32,
    tid: u32,
    kind: u8,
    arg0: i64,
    arg1: i64,
}

const NULL_EVENT: RawEvent = RawEvent {
    t_ns: 0,
    name: "",
    rank: -1,
    tid: 0,
    kind: KIND_BEGIN,
    arg0: -1,
    arg1: -1,
};

/// Fixed-capacity single-producer single-consumer event ring.
///
/// The owning thread is the only pusher; drains happen either from the
/// collector (under the registry lock, while the producer may still be
/// pushing — the SPSC protocol makes that safe) or from the producer
/// itself at thread exit (also under the registry lock, so no second
/// consumer can race it).
struct Ring {
    buf: Box<[UnsafeCell<RawEvent>]>,
    /// Monotonic count of events written (producer-owned).
    head: AtomicUsize,
    /// Monotonic count of events consumed (consumer-owned).
    tail: AtomicUsize,
    dropped: AtomicUsize,
    tid: u32,
}

// SAFETY: slot `i` is written only by the producer at `head == i` before
// the Release store making it visible, and read only by the consumer at
// `tail == i` after an Acquire load of `head` — never concurrently.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(tid: u32) -> Self {
        let buf: Vec<UnsafeCell<RawEvent>> =
            (0..RING_CAP).map(|_| UnsafeCell::new(NULL_EVENT)).collect();
        Ring {
            buf: buf.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            tid,
        }
    }

    /// Producer-side push; drops (and counts) when full.
    fn push(&self, ev: RawEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail >= RING_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { *self.buf[head % RING_CAP].get() = ev };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Consumer-side drain of everything currently visible.
    fn drain_into(&self, out: &mut Vec<RawEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail < head {
            out.push(unsafe { *self.buf[tail % RING_CAP].get() });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
    }
}

struct RegistryInner {
    /// Rings of live threads (collector drains these).
    live: Vec<Arc<Ring>>,
    /// Drained rings of exited threads, ready for reuse.
    free: Vec<Arc<Ring>>,
    /// Events drained so far, per-thread order preserved.
    collected: Vec<RawEvent>,
    dropped: u64,
    next_tid: u32,
}

struct Registry {
    inner: Mutex<RegistryInner>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner {
            live: Vec::new(),
            free: Vec::new(),
            collected: Vec::new(),
            dropped: 0,
            next_tid: 0,
        }),
    })
}

/// Is span collection active? One relaxed load — the whole cost of a
/// `span!` at a disabled site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start collecting spans (idempotent). Pins the timestamp epoch on
/// first call.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop collecting spans. Events already in rings stay until drained.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Nanoseconds since the trace epoch (pinned at first [`enable`]).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Thread-local handle whose drop flushes and recycles the ring.
struct ThreadRing {
    ring: Arc<Ring>,
}

impl ThreadRing {
    fn register() -> ThreadRing {
        let mut inner = registry().inner.lock().unwrap();
        let ring = match inner.free.pop() {
            Some(r) => r,
            None => {
                let tid = inner.next_tid;
                inner.next_tid += 1;
                Arc::new(Ring::new(tid))
            }
        };
        inner.live.push(Arc::clone(&ring));
        ThreadRing { ring }
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        // Thread exit: flush our own ring (we are producer AND — under
        // the registry lock — sole consumer), then recycle it.
        let mut inner = registry().inner.lock().unwrap();
        let mut buf = std::mem::take(&mut inner.collected);
        self.ring.drain_into(&mut buf);
        inner.collected = buf;
        inner.dropped += self.ring.dropped.swap(0, Ordering::Relaxed) as u64;
        inner.live.retain(|r| !Arc::ptr_eq(r, &self.ring));
        inner.free.push(Arc::clone(&self.ring));
    }
}

thread_local! {
    static LOCAL: RefCell<Option<ThreadRing>> = const { RefCell::new(None) };
}

fn push_event(mut ev: RawEvent) {
    // try_with: a span dropped during TLS teardown becomes a no-op
    // instead of a panic.
    let _ = LOCAL.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let tr = slot.get_or_insert_with(ThreadRing::register);
        ev.tid = tr.ring.tid;
        tr.ring.push(ev);
    });
}

/// RAII span: pushes a begin event on creation (when tracing is
/// enabled), an end event on drop. Construct via [`span!`].
#[must_use = "a span guard measures until dropped; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    rank: i32,
    active: bool,
}

impl SpanGuard {
    #[inline]
    pub fn enter(name: &'static str, rank: i32, arg0: i64, arg1: i64) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                name,
                rank,
                active: false,
            };
        }
        push_event(RawEvent {
            t_ns: now_ns(),
            name,
            rank,
            tid: 0,
            kind: KIND_BEGIN,
            arg0,
            arg1,
        });
        SpanGuard {
            name,
            rank,
            active: true,
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            push_event(RawEvent {
                t_ns: now_ns(),
                name: self.name,
                rank: self.rank,
                tid: 0,
                kind: KIND_END,
                arg0: -1,
                arg1: -1,
            });
        }
    }
}

/// Open a hierarchical span over the enclosing scope.
///
/// ```ignore
/// let _s = mrpic_trace::span!("deposit", rank, boxid);
/// ```
///
/// Forms: `span!(name)`, `span!(name, rank)`, `span!(name, rank, arg0)`,
/// `span!(name, rank, arg0, arg1)`. `rank` is `-1` for driver/serial
/// work; `arg0`/`arg1` carry span-specific metadata (box id, or peer
/// rank and byte count for `send`/`recv` spans). Compiles to a single
/// atomic load when tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, -1, -1, -1)
    };
    ($name:expr, $rank:expr) => {
        $crate::SpanGuard::enter($name, $rank as i32, -1, -1)
    };
    ($name:expr, $rank:expr, $a0:expr) => {
        $crate::SpanGuard::enter($name, $rank as i32, $a0 as i64, -1)
    };
    ($name:expr, $rank:expr, $a0:expr, $a1:expr) => {
        $crate::SpanGuard::enter($name, $rank as i32, $a0 as i64, $a1 as i64)
    };
}

/// Drain every live thread ring into the global collected buffer.
///
/// Call periodically (e.g. once per step) on long traced runs so thread
/// rings never overflow; [`take_trace`] collects implicitly.
pub fn collect() {
    let mut inner = registry().inner.lock().unwrap();
    let mut buf = std::mem::take(&mut inner.collected);
    let live: Vec<Arc<Ring>> = inner.live.to_vec();
    let mut dropped = 0u64;
    for ring in &live {
        ring.drain_into(&mut buf);
        dropped += ring.dropped.swap(0, Ordering::Relaxed) as u64;
    }
    inner.collected = buf;
    inner.dropped += dropped;
}

/// Drain all rings and assemble everything collected so far into a
/// [`Trace`], clearing the collector.
pub fn take_trace() -> Trace {
    collect();
    let (events, dropped) = {
        let mut inner = registry().inner.lock().unwrap();
        let ev = std::mem::take(&mut inner.collected);
        let d = inner.dropped;
        inner.dropped = 0;
        (ev, d)
    };
    Trace::from_raw(&events, dropped)
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    pub name: String,
    /// Owning rank; -1 for driver/serial-phase work.
    pub rank: i32,
    /// Thread track (stable across reuse of a recycled ring).
    pub tid: u32,
    pub begin_ns: u64,
    pub end_ns: u64,
    /// Nesting depth within its thread (0 = top level).
    pub depth: u32,
    pub arg0: i64,
    pub arg1: i64,
}

impl SpanRec {
    pub fn dur_s(&self) -> f64 {
        (self.end_ns.saturating_sub(self.begin_ns)) as f64 * 1e-9
    }
}

/// A collected set of spans, ordered by begin time.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub spans: Vec<SpanRec>,
    /// Events lost to ring overflow (spans may be missing if nonzero).
    pub dropped: u64,
}

impl Trace {
    fn from_raw(events: &[RawEvent], dropped: u64) -> Trace {
        // Per-thread event order is preserved in the collected buffer
        // (each drain appends a ring's run contiguously), so a per-tid
        // stack of open begins reconstructs the span tree.
        let mut spans = Vec::new();
        let mut stacks: std::collections::HashMap<u32, Vec<RawEvent>> =
            std::collections::HashMap::new();
        let mut max_t = 0u64;
        for ev in events {
            let tid = ev.tid;
            max_t = max_t.max(ev.t_ns);
            let stack = stacks.entry(tid).or_default();
            match ev.kind {
                KIND_BEGIN => stack.push(*ev),
                _ => {
                    // Pop the innermost matching begin; unmatched ends
                    // (begin lost to overflow) are skipped.
                    if let Some(pos) = stack.iter().rposition(|b| b.name == ev.name) {
                        let depth = pos as u32;
                        let begin = stack.remove(pos);
                        spans.push(SpanRec {
                            name: begin.name.to_string(),
                            rank: begin.rank,
                            tid,
                            begin_ns: begin.t_ns,
                            end_ns: ev.t_ns,
                            depth,
                            arg0: begin.arg0,
                            arg1: begin.arg1,
                        });
                    }
                }
            }
        }
        // Close any still-open spans at the last timestamp seen (e.g. a
        // trace taken mid-span).
        for (_, stack) in stacks {
            for (pos, begin) in stack.iter().enumerate() {
                spans.push(SpanRec {
                    name: begin.name.to_string(),
                    rank: begin.rank,
                    tid: begin.tid,
                    begin_ns: begin.t_ns,
                    end_ns: max_t,
                    depth: pos as u32,
                    arg0: begin.arg0,
                    arg1: begin.arg1,
                });
            }
        }
        spans.sort_by_key(|s| (s.begin_ns, std::cmp::Reverse(s.end_ns)));
        Trace { spans, dropped }
    }

    /// Ranks present (spans with `rank >= 0`), as `max + 1`.
    pub fn nranks(&self) -> usize {
        self.spans
            .iter()
            .map(|s| s.rank + 1)
            .max()
            .unwrap_or(0)
            .max(0) as usize
    }

    /// Wall-clock extent of the trace in seconds.
    pub fn wall_s(&self) -> f64 {
        let lo = self.spans.iter().map(|s| s.begin_ns).min().unwrap_or(0);
        let hi = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        (hi.saturating_sub(lo)) as f64 * 1e-9
    }

    /// Timestamp- and thread-independent digest of the span tree:
    /// `(name, rank, arg0, count)` sorted. Two runs of the same seeded
    /// configuration must produce identical signatures.
    pub fn signature(&self) -> Vec<(String, i32, i64, u64)> {
        let mut agg: std::collections::BTreeMap<(String, i32, i64), u64> = Default::default();
        for s in &self.spans {
            *agg.entry((s.name.clone(), s.rank, s.arg0)).or_default() += 1;
        }
        agg.into_iter()
            .map(|((name, rank, arg0), n)| (name, rank, arg0, n))
            .collect()
    }

    /// Span references filtered by name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Verify spans on each thread track form a proper forest: every
    /// pair of spans on one track is either disjoint or nested.
    pub fn check_nesting(&self) -> Result<(), String> {
        let mut by_tid: std::collections::BTreeMap<u32, Vec<&SpanRec>> = Default::default();
        for s in &self.spans {
            by_tid.entry(s.tid).or_default().push(s);
        }
        for (tid, mut spans) in by_tid {
            spans.sort_by_key(|s| (s.begin_ns, std::cmp::Reverse(s.end_ns)));
            let mut open: Vec<&SpanRec> = Vec::new();
            for s in spans {
                while let Some(top) = open.last() {
                    if top.end_ns <= s.begin_ns {
                        open.pop();
                    } else {
                        break;
                    }
                }
                if let Some(top) = open.last() {
                    if s.end_ns > top.end_ns {
                        return Err(format!(
                            "tid {tid}: span '{}' [{}, {}] overlaps '{}' [{}, {}] without nesting",
                            s.name, s.begin_ns, s.end_ns, top.name, top.begin_ns, top.end_ns
                        ));
                    }
                }
                open.push(s);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag, rings, and collector are process-global; tests
    /// that touch them must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        disable();
        let _ = take_trace(); // clear leftovers
        {
            let _s = span!("ghost");
        }
        let t = take_trace();
        assert!(t.spans.iter().all(|s| s.name != "ghost"));
    }

    #[test]
    fn spans_nest_and_carry_args() {
        let _g = lock();
        let _ = take_trace();
        enable();
        {
            let _outer = span!("outer", 2, 7);
            let _inner = span!("inner", 2, 7, 4096);
        }
        disable();
        let t = take_trace();
        let outer = t.named("outer").next().expect("outer recorded");
        let inner = t.named("inner").next().expect("inner recorded");
        assert_eq!(outer.rank, 2);
        assert_eq!(outer.arg0, 7);
        assert_eq!(inner.arg1, 4096);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.begin_ns <= inner.begin_ns && inner.end_ns <= outer.end_ns);
        t.check_nesting().expect("RAII spans nest by construction");
    }

    #[test]
    fn cross_thread_spans_keep_their_tracks_and_rings_recycle() {
        let _g = lock();
        let _ = take_trace();
        enable();
        for round in 0..3 {
            std::thread::scope(|sc| {
                for w in 0..4 {
                    sc.spawn(move || {
                        let _s = span!("worker", w, round);
                    });
                }
            });
        }
        disable();
        let t = take_trace();
        let workers: Vec<_> = t.named("worker").collect();
        assert_eq!(workers.len(), 12);
        t.check_nesting()
            .expect("independent tracks nest trivially");
        // Dead threads recycled their rings: the free list bounds ring
        // allocation to the peak live thread count, not total spawns.
        let inner = registry().inner.lock().unwrap();
        assert!(inner.live.len() <= 1, "only the test thread may stay live");
        assert!(
            inner.free.len() <= 5,
            "rings should be reused across scoped-thread rounds, got {}",
            inner.free.len()
        );
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let _g = lock();
        let ring = Ring::new(9999);
        let mut ev = NULL_EVENT;
        for i in 0..(RING_CAP + 100) {
            ev.t_ns = i as u64;
            ring.push(ev);
        }
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 100);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAP);
        assert_eq!(out[0].t_ns, 0);
        // Drained: pushes flow again.
        ring.push(ev);
        let mut out2 = Vec::new();
        ring.drain_into(&mut out2);
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn signature_ignores_threads_and_time() {
        let _g = lock();
        let _ = take_trace();
        enable();
        let run = || {
            std::thread::scope(|sc| {
                for r in 0..2 {
                    sc.spawn(move || {
                        let _s = span!("phase", r, 1);
                        let _t = span!("kernel", r, 2);
                    });
                }
            });
        };
        run();
        let a = take_trace();
        run();
        let b = take_trace();
        disable();
        assert_eq!(a.signature(), b.signature());
        assert!(!a.signature().is_empty());
    }
}
