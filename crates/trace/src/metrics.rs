//! Global metrics registry: named counters and log2-bucket histograms.
//!
//! Handles are registered once (leaked `'static` allocations behind a
//! mutex) and looked up by name; hot call sites should cache the
//! returned reference (e.g. in a `OnceLock`) so the steady-state cost
//! is a single relaxed atomic add. Histograms bucket by `floor(log2)`,
//! which is plenty for the quantities traced here — message bytes,
//! retry counts, recv-wait nanoseconds, per-box kernel nanoseconds —
//! where order of magnitude is what matters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Bucket `i` holds values in `[2^(i-1), 2^i)`; bucket 0 holds zero.
pub const NBUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Monotonic named counter.
pub struct Counter {
    pub name: &'static str,
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Lock-free log2-bucket histogram.
pub struct Histogram {
    pub name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NBUCKETS],
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the cumulative state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            name: self.name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// Fetch-or-register the counter `name`. Cache the handle at hot sites.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = COUNTERS.lock().unwrap();
    if let Some(c) = reg.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name,
        value: AtomicU64::new(0),
    }));
    reg.push(c);
    c
}

/// Fetch-or-register the histogram `name`. Cache the handle at hot
/// sites.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = HISTOGRAMS.lock().unwrap();
    if let Some(h) = reg.iter().find(|h| h.name == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name,
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
    }));
    reg.push(h);
    h
}

/// Cumulative values of all registered counters, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let reg = COUNTERS.lock().unwrap();
    let mut v: Vec<(String, u64)> = reg.iter().map(|c| (c.name.to_string(), c.get())).collect();
    v.sort();
    v
}

/// Cumulative snapshots of all registered histograms, sorted by name.
pub fn histograms_snapshot() -> Vec<HistSnapshot> {
    let reg = HISTOGRAMS.lock().unwrap();
    let mut v: Vec<HistSnapshot> = reg.iter().map(|h| h.snapshot()).collect();
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v
}

/// Copy of one histogram's cumulative state; subtract two snapshots to
/// get a windowed (e.g. per-step) view.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// The recorded activity since `prev` (which must be an earlier
    /// snapshot of the same histogram).
    pub fn delta_since(&self, prev: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            name: self.name.clone(),
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            buckets: self
                .buckets
                .iter()
                .zip(prev.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Upper bound of the bucket containing quantile `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return bucket_hi(i);
            }
        }
        bucket_hi(NBUCKETS - 1)
    }

    /// Compact serializable summary.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            name: self.name.clone(),
            count: self.count,
            sum: self.sum,
            mean: if self.count > 0 {
                self.sum as f64 / self.count as f64
            } else {
                0.0
            },
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            max: self.quantile(1.0),
        }
    }
}

/// Upper bound (inclusive) of log2 bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Serializable digest of a histogram window: emitted into telemetry
/// `StepRecord`s when tracing is enabled. Quantiles are log2-bucket
/// upper bounds, so accurate to within 2x.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
}

/// Serializable point-in-time view of the whole registry: every counter
/// value and every histogram summary, both sorted by name. This is the
/// export surface the observability plane ships off-process (counters
/// land in per-rank `RankMetrics`, summaries in scrape endpoints).
/// Individual loads are atomic, so a snapshot taken during active
/// traffic never tears a value; see the concurrent hammer test below
/// for the exact guarantees.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistSummary>,
}

/// Snapshot every registered counter and histogram.
pub fn registry_snapshot() -> RegistrySnapshot {
    RegistrySnapshot {
        counters: counters_snapshot(),
        histograms: histograms_snapshot().iter().map(|h| h.summary()).collect(),
    }
}

/// Summaries of every histogram's activity since `prev` (an earlier
/// [`histograms_snapshot`]); histograms with no new samples are
/// omitted. Returns the new snapshot for the next window alongside.
pub fn summaries_since(prev: &[HistSnapshot]) -> (Vec<HistSummary>, Vec<HistSnapshot>) {
    let now = histograms_snapshot();
    let mut out = Vec::new();
    for snap in &now {
        let delta = match prev.iter().find(|p| p.name == snap.name) {
            Some(p) => snap.delta_since(p),
            None => snap.clone(),
        };
        if delta.count > 0 {
            out.push(delta.summary());
        }
    }
    (out, now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_hi(1), 1);
        assert_eq!(bucket_hi(2), 3);
        assert_eq!(bucket_hi(11), 2047);
    }

    #[test]
    fn histogram_quantiles_and_deltas() {
        let h = histogram("test.metrics.quantiles");
        let before = h.snapshot();
        for v in [1u64, 2, 3, 900, 1000] {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 5);
        assert_eq!(delta.sum, 1906);
        // p50 falls in the bucket of 3 ([2,4) -> hi 3).
        assert_eq!(delta.quantile(0.5), 3);
        // max falls in the bucket of 1000 ([512,1024) -> hi 1023).
        assert_eq!(delta.quantile(1.0), 1023);
        let s = delta.summary();
        assert_eq!(s.count, 5);
        assert!((s.mean - 1906.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_and_identity_is_stable() {
        let c1 = counter("test.metrics.counter");
        let c2 = counter("test.metrics.counter");
        assert!(std::ptr::eq(c1, c2));
        let base = c1.get();
        c1.add(3);
        c2.incr();
        assert_eq!(c1.get(), base + 4);
    }

    /// Hammer the registry from several writer threads while the main
    /// thread snapshots continuously. Guarantees under test:
    ///
    /// - snapshots never tear a value (every load is a single atomic
    ///   read, so per-counter values are always genuine past values:
    ///   monotonically non-decreasing across successive snapshots);
    /// - histogram `count` and the bucket sum never drift further apart
    ///   than the number of in-flight `record` calls (one per writer);
    /// - no increment is lost: after the writers join, the final
    ///   snapshot equals exactly what was written.
    #[test]
    fn snapshot_under_concurrent_writers_is_lossless() {
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;
        let c = counter("test.metrics.hammer_counter");
        let h = histogram("test.metrics.hammer_hist");
        let c0 = c.get();
        let h0 = h.snapshot();
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        c.add(1);
                        // Spread values across buckets.
                        h.record((i % 1024) + w as u64);
                    }
                });
            }
            let mut last_count = c0;
            while last_count < c0 + WRITERS as u64 * PER_WRITER {
                let cv = c.get();
                assert!(cv >= last_count, "counter snapshot went backwards");
                last_count = cv;
                let hs = h.snapshot().delta_since(&h0);
                let bucket_sum: u64 = hs.buckets.iter().sum();
                // count is bumped before the bucket and the snapshot
                // reads count first, so the bucket sum may run ahead
                // (records completing during the bucket scan) but may
                // trail the count only by the records in flight — one
                // per writer. A bigger deficit would be a lost or torn
                // bucket increment.
                assert!(
                    bucket_sum + WRITERS as u64 >= hs.count,
                    "torn histogram snapshot: count {} vs bucket sum {}",
                    hs.count,
                    bucket_sum,
                );
            }
        });
        assert_eq!(c.get() - c0, WRITERS as u64 * PER_WRITER);
        let hs = h.snapshot().delta_since(&h0);
        assert_eq!(hs.count, WRITERS as u64 * PER_WRITER, "lost records");
        assert_eq!(hs.buckets.iter().sum::<u64>(), hs.count);
        let want_sum: u64 = (0..WRITERS as u64)
            .map(|w| (0..PER_WRITER).map(|i| (i % 1024) + w).sum::<u64>())
            .sum();
        assert_eq!(hs.sum, want_sum, "lost or torn sum increments");
        // The registry-wide export sees the same final values.
        let reg = registry_snapshot();
        let (_, cv) = reg
            .counters
            .iter()
            .find(|(n, _)| n == "test.metrics.hammer_counter")
            .expect("counter registered");
        assert_eq!(cv - c0, WRITERS as u64 * PER_WRITER);
    }

    #[test]
    fn registry_snapshot_roundtrips_through_json() {
        counter("test.metrics.registry_rt").add(2);
        histogram("test.metrics.registry_rt_hist").record(9);
        let snap = registry_snapshot();
        let s = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(back, snap);
        assert!(back
            .counters
            .iter()
            .any(|(n, v)| n == "test.metrics.registry_rt" && *v >= 2));
        assert!(back
            .histograms
            .iter()
            .any(|h| h.name == "test.metrics.registry_rt_hist"));
    }

    #[test]
    fn summaries_since_reports_only_active_windows() {
        let h = histogram("test.metrics.windowed");
        let (_, mark) = summaries_since(&[]);
        h.record(64);
        let (sums, _) = summaries_since(&mark);
        let s = sums
            .iter()
            .find(|s| s.name == "test.metrics.windowed")
            .expect("active histogram reported");
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 64);
    }
}
