//! Bench for the §V-C load-balancing machinery: strategy construction
//! cost on production-sized box arrays and the guard-exchange planning.
//!
//! Run with: `cargo bench -p mrpic-bench --bench load_balance`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrpic_amr::{BoxArray, DistributionMapping, IndexBox, IntVect, Periodicity, Stagger, Strategy};
use mrpic_cluster::lb::solid_slab_costs;

fn benches(c: &mut Criterion) {
    // 4096 boxes, as a large per-rank AMReX layout.
    let dom = IndexBox::from_size(IntVect::new(512, 512, 16));
    let ba = BoxArray::chop(dom, IntVect::new(32, 32, 4));
    let slab = IndexBox::new(IntVect::new(256, 0, 0), IntVect::new(288, 512, 16));
    let costs = solid_slab_costs(&ba, &slab, 50.0);
    let mut group = c.benchmark_group("distribution_build");
    group.sample_size(20);
    for strat in [
        Strategy::RoundRobin,
        Strategy::SpaceFillingCurve,
        Strategy::Knapsack,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strat:?}")),
            &strat,
            |b, &strat| {
                b.iter(|| DistributionMapping::build(&ba, 64, strat, &costs));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("exchange_planning");
    group.sample_size(10);
    let small_dom = IndexBox::from_size(IntVect::new(128, 128, 8));
    let small_ba = BoxArray::chop(small_dom, IntVect::new(32, 32, 4));
    let per = Periodicity::all(small_dom);
    group.bench_function("fill_plan_64_boxes", |b| {
        b.iter(|| {
            mrpic_amr::comm::ExchangePlan::fill(&small_ba, Stagger::EX, IntVect::splat(3), &per)
        })
    });
    group.bench_function("sum_plan_64_boxes", |b| {
        b.iter(|| {
            mrpic_amr::comm::ExchangePlan::sum(&small_ba, Stagger::EX, IntVect::splat(3), &per)
        })
    });
    group.finish();
}

criterion_group!(load_balance, benches);
criterion_main!(load_balance);
