//! Step-loop bench: whole `Simulation::step()` cost on a uniform plasma
//! and on the MR hybrid-target configuration, with a per-phase breakdown
//! (particle / field / exchange seconds) written to
//! `BENCH_step_loop.json` at the repository root.
//!
//! The `uncached_plans` variant invalidates the exchange-plan cache
//! before every step, reproducing the seed behavior of rebuilding every
//! plan on every exchange — the delta against the cached run is the
//! plan-cache win.
//!
//! The `dist_cases` series steps the MR workload through the
//! `mrpic-dist` message-passing runtime at 1, 2, and 4 ranks, recording
//! per-rank communication volumes alongside the step time.
//!
//! The `tracing_overhead` block steps the MR workload twice through
//! identical trajectories — once with mrpic-trace span tracing enabled,
//! once without — and records the relative step-time overhead (budget:
//! <5%) plus the per-call cost of a *disabled* span guard, which must
//! stay in single-digit nanoseconds (one relaxed atomic load).
//! `metrics_overhead` does the same for the observability plane
//! (per-step `RankSampler` + `MetricsHub` publication; budget: <1%).
//!
//! Run with: `cargo bench -p mrpic-bench --bench step_loop`

use criterion::{criterion_group, criterion_main, Criterion};
use mrpic_amr::{IndexBox, IntVect};
use mrpic_core::laser::antenna_for_a0;
use mrpic_core::mr::MrConfig;
use mrpic_core::profile::Profile;
use mrpic_core::sim::{Precision, ShapeOrder, Simulation, SimulationBuilder};
use mrpic_core::species::Species;
use mrpic_core::telemetry::PhaseTimes;
use mrpic_dist::DistSim;
use mrpic_field::fieldset::Dim;
use mrpic_kernels::constants::critical_density;
use serde_json::{json, Value};
use std::time::Instant;

const UM: f64 = 1.0e-6;

/// Periodic uniform drifting plasma over four boxes (no PML, no MR):
/// the steady-state hot path with nothing but particles and exchanges.
fn build_uniform() -> Simulation {
    build_uniform_cfg(true, mrpic_kernels::DEFAULT_LANE_WIDTH, Precision::F64)
}

/// [`build_uniform`] with explicit kernel knobs (scalar-reference vs
/// lane-blocked, lane width, precision mode).
fn build_uniform_cfg(optimized: bool, lane_width: usize, precision: Precision) -> Simulation {
    SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(64, 1, 64), [0.1 * UM; 3], [0.0; 3])
        .periodic([true, true, true])
        .max_box(IntVect::new(32, 1, 32))
        .order(ShapeOrder::Quadratic)
        .cfl(0.6)
        .optimized_kernels(optimized)
        .lane_width(lane_width)
        .precision(precision)
        .add_species(
            Species::electrons("e", Profile::Uniform { n0: 2.0e25 }, [2, 1, 2])
                .with_thermal([1.0e6; 3]),
        )
        .build()
}

/// Laser on a solid foil + gas ramp with a refined patch over the foil —
/// the paper's hybrid-target configuration at bench scale.
fn build_mr() -> Simulation {
    let h = 0.1 * UM;
    let nc = critical_density(0.8 * UM);
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(128, 1, 32), [h, h, h], [0.0; 3])
        .periodic([false, false, true])
        .pml(8)
        .max_box(IntVect::new(64, 1, 32))
        .order(ShapeOrder::Quadratic)
        .cfl(0.6)
        .add_species(Species::electrons(
            "solid",
            Profile::Slab {
                n0: 5.0 * nc,
                axis: 0,
                x0: 7.0 * UM,
                x1: 8.0 * UM,
            },
            [2, 1, 2],
        ))
        .add_species(Species::electrons(
            "gas",
            Profile::Ramped {
                n0: 2.0e25,
                axis: 0,
                up_start: 2.0 * UM,
                up_end: 3.0 * UM,
                down_start: 7.0 * UM,
                down_end: 7.0 * UM,
            },
            [1, 1, 1],
        ))
        .add_laser(antenna_for_a0(
            2.0,
            0.8 * UM,
            8.0e-15,
            1.0 * UM,
            1.6 * UM,
            2.0 * UM,
        ))
        .build();
    let i0 = (6.0 * UM / h) as i64;
    let i1 = (9.0 * UM / h) as i64;
    let nzc = sim.fs.domain().hi.z;
    sim.add_mr_patch(MrConfig {
        patch: IndexBox::new(IntVect::new(i0, 0, 0), IntVect::new(i1, 1, nzc)),
        rr: 2,
        n_transition: 3,
        npml: 8,
        subcycle: false,
    });
    sim
}

/// Step `steps` times; return per-step (total, particle, field,
/// exchange) seconds. `invalidate` mimics the seed's per-call plan
/// rebuilds.
fn profile(sim: &mut Simulation, steps: usize, invalidate: bool) -> (f64, f64, f64, f64) {
    let t0 = Instant::now();
    let (mut part, mut field, mut exch) = (0.0, 0.0, 0.0);
    for _ in 0..steps {
        if invalidate {
            sim.fs.invalidate_plans();
        }
        let st = sim.step();
        part += st.particle_seconds;
        field += st.field_seconds;
        exch += st.exchange_seconds;
    }
    let n = steps as f64;
    (
        t0.elapsed().as_secs_f64() / n,
        part / n,
        field / n,
        exch / n,
    )
}

fn case(name: &str, mut sim: Simulation, invalidate: bool) -> Value {
    // Warm caches and particle distributions before measuring. Telemetry
    // stays at its defaults (enabled, sentinel every step) so the numbers
    // include the observability overhead a production run pays.
    sim.run(3);
    let (total, part, field, exch) = profile(&mut sim, 20, invalidate);
    assert!(!sim.telemetry.tripped(), "bench sim tripped a NaN guard");
    let mut ph = PhaseTimes::default();
    for r in sim.telemetry.records().iter().rev().take(20) {
        ph.merge(&r.phases);
    }
    let n = 20.0;
    let phase_seconds = json!({
        "gather": ph.gather / n,
        "push": ph.push / n,
        "deposit": ph.deposit / n,
        "sum": ph.sum / n,
        "maxwell": ph.maxwell / n,
        "mr": ph.mr / n,
        "fill": ph.fill / n
    });
    json!({
        "case": name,
        "steps": 20,
        "step_seconds": total,
        "particle_seconds": part,
        "field_seconds": field,
        "exchange_seconds": exch,
        "plan_builds_total": sim.plan_builds_total(),
        "phase_seconds": phase_seconds
    })
}

/// Step the MR hybrid target through the `mrpic-dist` in-process runtime
/// at `nranks` ranks and report per-step timing plus the per-rank
/// communication volume of the final step.
fn dist_case(sim: Simulation, nranks: usize) -> Value {
    let mut d = DistSim::in_process(sim, nranks);
    d.run(3);
    let t0 = Instant::now();
    let (mut part, mut exch) = (0.0, 0.0);
    const STEPS: usize = 20;
    for _ in 0..STEPS {
        let st = d.step();
        part += st.particle_seconds;
        exch += st.exchange_seconds;
    }
    let total = t0.elapsed().as_secs_f64() / STEPS as f64;
    let ranks: Vec<Value> = d
        .sim
        .telemetry
        .records()
        .back()
        .map(|r| &r.ranks[..])
        .unwrap_or(&[])
        .iter()
        .map(|r| {
            json!({
                "rank": r.rank,
                "sent_bytes": r.sent_bytes,
                "sent_messages": r.sent_messages,
                "exchange_seconds": r.exchange_seconds,
                "particle_seconds": r.particle_seconds,
            })
        })
        .collect();
    json!({
        "case": "mr_hybrid_target_dist",
        "ranks": nranks,
        "steps": STEPS,
        "step_seconds": total,
        "particle_seconds": part / STEPS as f64,
        "exchange_seconds": exch / STEPS as f64,
        "last_step_rank_records": ranks
    })
}

/// Traced vs. untraced step time on identical MR trajectories, plus
/// the per-call cost of a disabled span guard.
fn tracing_overhead_case() -> Value {
    const STEPS: usize = 40;
    // Two deterministic builds follow the same trajectory, so the only
    // difference between the timed windows is the tracing itself.
    let mut plain = build_mr();
    let mut traced = build_mr();
    plain.run(3);
    traced.run(3);
    mrpic_trace::disable();
    let _ = mrpic_trace::take_trace();
    let t0 = Instant::now();
    for _ in 0..STEPS {
        plain.step();
    }
    let untraced_s = t0.elapsed().as_secs_f64() / STEPS as f64;
    mrpic_trace::enable();
    let t0 = Instant::now();
    for _ in 0..STEPS {
        traced.step();
        mrpic_trace::collect();
    }
    let traced_s = t0.elapsed().as_secs_f64() / STEPS as f64;
    mrpic_trace::disable();
    let trace = mrpic_trace::take_trace();
    let overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s;
    // Disabled spans must compile down to a flag check: measure the
    // per-call cost of entering+dropping a guard while tracing is off.
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        let _g = mrpic_trace::span!("bench_noop", -1, i);
    }
    let disabled_span_ns = t0.elapsed().as_nanos() as f64 / CALLS as f64;
    let _ = mrpic_trace::take_trace();
    // Gate with an absolute floor so scheduler noise on a sub-ms step
    // cannot trip the relative budget spuriously.
    assert!(
        overhead_pct < 5.0 || traced_s - untraced_s < 50e-6,
        "tracing overhead {overhead_pct:.2}% exceeds the 5% budget \
         (untraced {untraced_s:.6} s/step, traced {traced_s:.6} s/step)"
    );
    assert!(
        disabled_span_ns < 100.0,
        "disabled span guard costs {disabled_span_ns:.1} ns/call — not a no-op"
    );
    json!({
        "steps": STEPS,
        "untraced_step_seconds": untraced_s,
        "traced_step_seconds": traced_s,
        "overhead_pct": overhead_pct,
        "spans_per_step": trace.spans.len() as f64 / STEPS as f64,
        "disabled_span_ns": disabled_span_ns
    })
}

/// Metrics-on vs. metrics-off step time on identical MR trajectories:
/// the sampling arm feeds every step's record to a `RankSampler` and
/// publishes a sample into a `MetricsHub` each step (the worst cadence
/// a real run would use). Budget: <1% relative, with the same absolute
/// floor as the tracing gate so scheduler noise on a sub-ms step cannot
/// trip it spuriously.
fn metrics_overhead_case() -> Value {
    const STEPS: usize = 40;
    let mut plain = build_mr();
    let mut metered = build_mr();
    plain.run(3);
    metered.run(3);
    let t0 = Instant::now();
    for _ in 0..STEPS {
        plain.step();
    }
    let off_s = t0.elapsed().as_secs_f64() / STEPS as f64;
    let hub = mrpic_obs::MetricsHub::new("bench");
    let mut sampler = mrpic_obs::RankSampler::new(0);
    let t0 = Instant::now();
    for _ in 0..STEPS {
        metered.step();
        if let Some(rec) = metered.telemetry.records().back() {
            sampler.observe(rec);
        }
        hub.update_rank(sampler.sample());
    }
    let on_s = t0.elapsed().as_secs_f64() / STEPS as f64;
    let overhead_pct = 100.0 * (on_s - off_s) / off_s;
    assert!(
        overhead_pct < 1.0 || on_s - off_s < 50e-6,
        "metrics overhead {overhead_pct:.2}% exceeds the 1% budget \
         (off {off_s:.6} s/step, on {on_s:.6} s/step)"
    );
    let samples = hub.snapshot().samples().len();
    json!({
        "case": "metrics_overhead",
        "steps": STEPS,
        "metrics_off_step_seconds": off_s,
        "metrics_on_step_seconds": on_s,
        "overhead_pct": overhead_pct,
        "exposition_samples": samples
    })
}

/// Per-phase seconds of the uniform-plasma workload at each supported
/// lane width (the fixed tile size W the blocked kernels process per
/// iteration). Run inside the single-thread pool.
fn lane_width_sweep() -> Vec<Value> {
    mrpic_kernels::LANE_WIDTHS
        .iter()
        .map(|&w| {
            let mut sim = build_uniform_cfg(true, w, Precision::F64);
            sim.run(3);
            let (total, _, _, _) = profile(&mut sim, 20, false);
            let mut ph = PhaseTimes::default();
            for r in sim.telemetry.records().iter().rev().take(20) {
                ph.merge(&r.phases);
            }
            let n = 20.0;
            json!({
                "lane_width": w,
                "steps": 20,
                "step_seconds": total,
                "gather_seconds": ph.gather / n,
                "push_seconds": ph.push / n,
                "deposit_seconds": ph.deposit / n
            })
        })
        .collect()
}

/// Audited model intensity (flops/byte) per kernel variant, plus the
/// achieved GFLOP/s implied by this run's measured gather/deposit phase
/// seconds on the uniform-plasma workload (order 2, 2-D, `np`
/// particles).
fn kernel_intensity(cases: &[Value], np: f64) -> Vec<Value> {
    use mrpic_kernels::flops::{KernelCosts, KernelVariant};
    let entries = [
        (
            "uniform_plasma_scalar",
            "scalar",
            KernelVariant::Scalar,
            8.0,
        ),
        (
            "uniform_plasma",
            "lane_blocked",
            KernelVariant::LaneBlocked,
            8.0,
        ),
        (
            "uniform_plasma_f32",
            "lane_blocked_f32",
            KernelVariant::LaneBlocked,
            4.0,
        ),
    ];
    entries
        .iter()
        .filter_map(|&(case_name, variant_name, variant, wsize)| {
            let c = cases
                .iter()
                .find(|c| c.get("case").and_then(Value::as_str) == Some(case_name))?;
            let k = KernelCosts::for_variant(2, 2, wsize, variant);
            let ph = c.get("phase_seconds")?;
            let gather_s = ph.get("gather").and_then(Value::as_f64)?;
            let deposit_s = ph.get("deposit").and_then(Value::as_f64)?;
            Some(json!({
                "case": case_name,
                "variant": variant_name,
                "wsize_bytes": wsize,
                "gather_intensity_flops_per_byte": k.gather_intensity(),
                "deposit_intensity_flops_per_byte": k.deposit_intensity(),
                "gather_gflops_achieved": np * k.gather_flops / gather_s / 1e9,
                "deposit_gflops_achieved": np * k.deposit_flops / deposit_s / 1e9
            }))
        })
        .collect()
}

fn emit_report() {
    // Phase profile runs single-threaded so the JSON numbers are the
    // single-thread step-time basis used for before/after comparisons.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let cases: Vec<Value> = pool.install(|| {
        vec![
            case("uniform_plasma", build_uniform(), false),
            case(
                "uniform_plasma_scalar",
                build_uniform_cfg(false, 8, Precision::F64),
                false,
            ),
            case(
                "uniform_plasma_f32",
                build_uniform_cfg(
                    true,
                    mrpic_kernels::DEFAULT_LANE_WIDTH,
                    Precision::F32Particles,
                ),
                false,
            ),
            case("uniform_plasma_uncached_plans", build_uniform(), true),
            case("mr_hybrid_target", build_mr(), false),
        ]
    });
    let sweep = pool.install(lane_width_sweep);
    let np = build_uniform().total_particles() as f64;
    let intensity = kernel_intensity(&cases, np);
    // Multi-rank series: the same MR workload through the distributed
    // runtime at 1/2/4 ranks (rank threads manage their own parallelism,
    // so this runs outside the single-thread pool).
    let dist_cases: Vec<Value> = [1, 2, 4]
        .into_iter()
        .map(|n| dist_case(build_mr(), n))
        .collect();
    let tracing_overhead = tracing_overhead_case();
    let metrics_overhead = metrics_overhead_case();
    let report = json!({
        "bench": "step_loop",
        "threads": 1,
        "cases": cases,
        "lane_width_sweep": sweep,
        "kernel_intensity": intensity,
        "dist_cases": dist_cases,
        "tracing_overhead": tracing_overhead,
        "metrics_overhead": metrics_overhead
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_step_loop.json");
    let text = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, text).expect("write report");
    println!("wrote {path}");
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_loop");
    group.sample_size(10);
    let mut uni = build_uniform();
    uni.run(3);
    group.bench_function("uniform_plasma", |b| b.iter(|| uni.step()));
    let mut mr = build_mr();
    mr.run(3);
    group.bench_function("mr_hybrid_target", |b| b.iter(|| mr.step()));
    let mut mr2 = DistSim::in_process(build_mr(), 2);
    mr2.run(3);
    group.bench_function("mr_hybrid_target_2ranks", |b| b.iter(|| mr2.step()));
    group.finish();
    emit_report();
}

criterion_group!(step_loop, benches);
criterion_main!(step_loop);
