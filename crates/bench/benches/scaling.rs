//! Bench for Fig. 5: evaluation cost of the machine scaling model and
//! the per-step cost breakdown of the four machines.
//!
//! Run with: `cargo bench -p mrpic-bench --bench scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrpic_cluster::machine::MachineModel;
use mrpic_cluster::roofline::{step_cost, Workload};
use mrpic_cluster::scaling::{paper_weak_nodes, strong_scaling, weak_scaling};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_model");
    for m in MachineModel::paper_machines() {
        let nodes = paper_weak_nodes(&m);
        group.bench_with_input(
            BenchmarkId::new("weak_scaling_sweep", m.name),
            &m,
            |b, m| b.iter(|| weak_scaling(m, &nodes, 8.0)),
        );
    }
    let summit = MachineModel::summit();
    group.bench_function("strong_scaling_sweep_summit", |b| {
        b.iter(|| strong_scaling(&summit, &[512, 1024, 2048, 4096], 8.0))
    });
    group.bench_function("single_step_cost_frontier", |b| {
        let m = MachineModel::frontier();
        let w = Workload::bench(&m, 8.0);
        b.iter(|| step_cost(&m, &w, 8576))
    });
    group.finish();
}

criterion_group!(scaling, benches);
criterion_main!(scaling);
