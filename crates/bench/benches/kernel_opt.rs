//! Bench for the §V-A.1 kernel-optimization table: baseline vs
//! restructured gather and current deposition, per shape order.
//!
//! Run with: `cargo bench -p mrpic-bench --bench kernel_opt`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrpic_kernels::deposit::{esirkepov3, esirkepov3_blocked, JViews};
use mrpic_kernels::gather::{gather3, gather3_blocked, EmOut, EmViews};
use mrpic_kernels::shape::{Cubic, Quadratic, Shape};
use mrpic_kernels::view::{FieldView, FieldViewMut, Geom};

const N: i64 = 48;
const NP: usize = 40_000;

struct Setup {
    fields: Vec<Vec<f64>>,
    x0: Vec<f64>,
    y0: Vec<f64>,
    z0: Vec<f64>,
    x1: Vec<f64>,
    y1: Vec<f64>,
    z1: Vec<f64>,
    w: Vec<f64>,
    geom: Geom,
}

fn flags(i: usize) -> [bool; 3] {
    [
        [true, false, false],
        [false, true, false],
        [false, false, true],
        [false, true, true],
        [true, false, true],
        [true, true, false],
    ][i]
}

fn setup() -> Setup {
    let len = (N * N * N) as usize;
    let fields = (0..6)
        .map(|c| {
            (0..len)
                .map(|i| ((i * (c + 3)) as f64 * 1.3e-4).sin())
                .collect()
        })
        .collect();
    let mut state = 7u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    let mut s = Setup {
        fields,
        x0: vec![0.0; NP],
        y0: vec![0.0; NP],
        z0: vec![0.0; NP],
        x1: vec![0.0; NP],
        y1: vec![0.0; NP],
        z1: vec![0.0; NP],
        w: vec![1.0e5; NP],
        geom: Geom {
            xmin: [0.0; 3],
            dx: [1.0e-6; 3],
        },
    };
    let side = (N - 16) as usize;
    for p in 0..NP {
        let cell = p / 8;
        let cx = (cell % side) as f64;
        let cz = ((cell / side) % side) as f64;
        let cy = ((cell / (side * side)) % side) as f64;
        s.x0[p] = (8.0 + cx + rng()) * 1.0e-6;
        s.y0[p] = (8.0 + cy + rng()) * 1.0e-6;
        s.z0[p] = (8.0 + cz + rng()) * 1.0e-6;
        s.x1[p] = s.x0[p] + (rng() - 0.5) * 0.9e-6;
        s.y1[p] = s.y0[p] + (rng() - 0.5) * 0.9e-6;
        s.z1[p] = s.z0[p] + (rng() - 0.5) * 0.9e-6;
    }
    s
}

fn bench_gather<S: Shape>(c: &mut Criterion, s: &Setup, label: &str) {
    let mut group = c.benchmark_group(format!("gather_{label}"));
    group.throughput(Throughput::Elements(NP as u64));
    group.sample_size(20);
    let mk_view = |i: usize| FieldView {
        data: s.fields[i].as_slice(),
        lo: [0, 0, 0],
        nx: N,
        nxy: N * N,
        half: flags(i),
    };
    let views = EmViews {
        ex: mk_view(0),
        ey: mk_view(1),
        ez: mk_view(2),
        bx: mk_view(3),
        by: mk_view(4),
        bz: mk_view(5),
    };
    let mut out = vec![vec![0.0f64; NP]; 6];
    for (name, blocked) in [("baseline", false), ("optimized", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (o0, rest) = out.split_at_mut(1);
                let (o1, rest) = rest.split_at_mut(1);
                let (o2, rest) = rest.split_at_mut(1);
                let (o3, rest) = rest.split_at_mut(1);
                let (o4, o5) = rest.split_at_mut(1);
                let mut eo = EmOut {
                    ex: &mut o0[0],
                    ey: &mut o1[0],
                    ez: &mut o2[0],
                    bx: &mut o3[0],
                    by: &mut o4[0],
                    bz: &mut o5[0],
                };
                if blocked {
                    gather3_blocked::<S, f64>(&s.x0, &s.y0, &s.z0, &s.geom, &views, &mut eo);
                } else {
                    gather3::<S, f64>(&s.x0, &s.y0, &s.z0, &s.geom, &views, &mut eo);
                }
            })
        });
    }
    group.finish();
}

fn bench_deposit<S: Shape>(c: &mut Criterion, s: &Setup, label: &str) {
    let mut group = c.benchmark_group(format!("deposit_{label}"));
    group.throughput(Throughput::Elements(NP as u64));
    group.sample_size(20);
    let len = (N * N * N) as usize;
    let mut j = vec![vec![0.0f64; len]; 3];
    for (name, blocked) in [("baseline", false), ("optimized", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                for comp in j.iter_mut() {
                    comp.fill(0.0);
                }
                let (jx, rest) = j.split_at_mut(1);
                let (jy, jz) = rest.split_at_mut(1);
                let mut jv = JViews {
                    jx: FieldViewMut {
                        data: &mut jx[0],
                        lo: [0, 0, 0],
                        nx: N,
                        nxy: N * N,
                        half: flags(0),
                    },
                    jy: FieldViewMut {
                        data: &mut jy[0],
                        lo: [0, 0, 0],
                        nx: N,
                        nxy: N * N,
                        half: flags(1),
                    },
                    jz: FieldViewMut {
                        data: &mut jz[0],
                        lo: [0, 0, 0],
                        nx: N,
                        nxy: N * N,
                        half: flags(2),
                    },
                };
                if blocked {
                    esirkepov3_blocked::<S, f64>(
                        &s.x0, &s.y0, &s.z0, &s.x1, &s.y1, &s.z1, &s.w, -1.6e-19, 1.0e-15, &s.geom,
                        &mut jv,
                    );
                } else {
                    esirkepov3::<S, f64>(
                        &s.x0, &s.y0, &s.z0, &s.x1, &s.y1, &s.z1, &s.w, -1.6e-19, 1.0e-15, &s.geom,
                        &mut jv,
                    );
                }
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let s = setup();
    bench_gather::<Cubic>(c, &s, "order3");
    bench_gather::<Quadratic>(c, &s, "order2");
    bench_deposit::<Cubic>(c, &s, "order3");
    bench_deposit::<Quadratic>(c, &s, "order2");
}

criterion_group!(kernel_opt, benches);
criterion_main!(kernel_opt);
