//! Bench for Fig. 6: per-step cost of the mesh-refined configuration vs
//! the uniformly-refined alternatives, in the two phases of the run
//! (patch present / patch removed).
//!
//! Run with: `cargo bench -p mrpic-bench --bench mr_tts`

use criterion::{criterion_group, criterion_main, Criterion};
use mrpic_amr::{IndexBox, IntVect};
use mrpic_core::laser::antenna_for_a0;
use mrpic_core::mr::MrConfig;
use mrpic_core::profile::Profile;
use mrpic_core::sim::{ShapeOrder, Simulation, SimulationBuilder};
use mrpic_core::species::Species;
use mrpic_field::fieldset::Dim;
use mrpic_kernels::constants::critical_density;

const UM: f64 = 1.0e-6;

fn build(fine_everywhere: bool, with_patch: bool, ppc: [usize; 3]) -> Simulation {
    let dx = 0.1 * UM;
    let (h, nx, nz) = if fine_everywhere {
        (dx / 2.0, 256, 64)
    } else {
        (dx, 128, 32)
    };
    let nc = critical_density(0.8 * UM);
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(nx, 1, nz), [h, h, h], [0.0; 3])
        .periodic([false, false, true])
        .pml(8)
        .order(ShapeOrder::Quadratic)
        .cfl(0.6)
        .add_species(Species::electrons(
            "solid",
            Profile::Slab {
                n0: 5.0 * nc,
                axis: 0,
                x0: 7.0 * UM,
                x1: 8.0 * UM,
            },
            ppc,
        ))
        .add_species(Species::electrons(
            "gas",
            Profile::Ramped {
                n0: 2.0e25,
                axis: 0,
                up_start: 2.0 * UM,
                up_end: 3.0 * UM,
                down_start: 7.0 * UM,
                down_end: 7.0 * UM,
            },
            [1, 1, 1],
        ))
        .add_laser(antenna_for_a0(
            2.0,
            0.8 * UM,
            8.0e-15,
            1.0 * UM,
            1.6 * UM,
            2.0 * UM,
        ))
        .build();
    if with_patch {
        let i0 = (6.0 * UM / h) as i64;
        let i1 = (9.0 * UM / h) as i64;
        let nzc = sim.fs.domain().hi.z;
        sim.add_mr_patch(MrConfig {
            patch: IndexBox::new(IntVect::new(i0, 0, 0), IntVect::new(i1, 1, nzc)),
            rr: 2,
            n_transition: 3,
            npml: 8,
            subcycle: false,
        });
    }
    sim
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_step_cost");
    group.sample_size(10);
    // Phase 1: patch present.
    let mut mr = build(false, true, [2, 1, 2]);
    group.bench_function("with_mr_patch_active", |b| b.iter(|| mr.step()));
    // Phase 2: patch removed (the post-star regime of Fig. 6).
    let mut mr2 = build(false, true, [2, 1, 2]);
    mr2.run(5);
    mr2.remove_mr_patch();
    group.bench_function("with_mr_patch_removed", |b| b.iter(|| mr2.step()));
    // The no-MR alternatives at 2x resolution.
    let mut fine_quarter = build(true, false, [1, 1, 1]);
    fine_quarter.dt = mr.dt;
    group.bench_function("no_mr_2xres_ppc_quarter", |b| {
        b.iter(|| fine_quarter.step())
    });
    let mut fine_full = build(true, false, [2, 1, 2]);
    fine_full.dt = mr.dt;
    group.bench_function("no_mr_2xres", |b| b.iter(|| fine_full.step()));
    group.finish();
}

criterion_group!(mr_tts, benches);
criterion_main!(mr_tts);
