//! Bench support crate; see `benches/` for the criterion targets.
