//! Live observability plane for running fleets.
//!
//! Everything else in the stack reports post-mortem: telemetry JSONL,
//! Chrome traces, and `mrpic_prof` all need the run to finish first.
//! This crate is the *live* side:
//!
//! - [`RankSampler`] turns the per-step [`StepRecord`] stream of one
//!   rank into a cumulative [`RankMetrics`] sample (plus windowed rates
//!   such as step/s and wire MB/s) cheap enough to take every step.
//! - [`MetricsHub`] merges per-rank samples — pushed over whatever
//!   channel the caller has (direct calls in-process, `Metrics` frames
//!   over the socket transport) — into one [`FleetSnapshot`], and
//!   renders it as Prometheus text exposition or a JSON snapshot.
//! - [`http`] serves the hub on an opt-in TCP listener (`GET /metrics`
//!   for scrapers, `GET /snapshot` for `mrpic_top`).
//! - [`FlightRecorder`] keeps a bounded ring of the most recent step
//!   records, LB decisions, guard trips, and transport errors, and
//!   dumps it as `blackbox.json` on guard trip, rank loss, panic, or
//!   SIGUSR1 — so a crashed rank no longer takes its last seconds of
//!   context to the grave.
//!
//! The plane is opt-in and budgeted: with no hub attached the cost is
//! zero, and with one attached the per-step cost is a ring push plus a
//! mutex-guarded map insert (asserted < 1% of step time in the
//! `step_loop` bench).
//!
//! [`StepRecord`]: mrpic_core::telemetry::StepRecord

pub mod expo;
pub mod http;
pub mod hub;
pub mod recorder;
pub mod snapshot;

pub use expo::{parse as parse_exposition, render as render_exposition, Sample};
pub use hub::MetricsHub;
pub use recorder::{
    arm_sigusr1, dump_recorder, install_panic_dump, install_recorder, sigusr1_pending,
    with_recorder, FlightEvent, FlightRecorder, BLACKBOX_SCHEMA,
};
pub use snapshot::{
    FleetSnapshot, JobMetrics, RankMetrics, RankSampler, ServeMetrics, TenantMetrics,
    SNAPSHOT_SCHEMA,
};
