//! Prometheus text-exposition rendering and parsing.
//!
//! The subset of the format we emit and accept: `# TYPE` comment lines,
//! then one `name{label="value",...} number` sample per line. Label
//! values escape `\`, `"`, and newline as `\\`, `\"`, and `\n`.
//! Rendering groups consecutive samples by metric name and calls
//! anything ending in `_total` a counter, the rest gauges. The parser
//! exists so scrapes can be validated without a real Prometheus: the
//! `mrpic_top --scrape` path and the round-trip tests both use it.

/// One exposition sample: metric name, label pairs, value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Render samples as text exposition. Samples are grouped by name in
/// first-appearance order; each group gets one `# TYPE` line.
pub fn render(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for s in samples {
        if s.name != last_name {
            let kind = if s.name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!("# TYPE {} {}\n", s.name, kind));
            last_name = &s.name;
        }
        out.push_str(&s.name);
        if !s.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            out.push('}');
        }
        out.push_str(&format!(" {}\n", s.value));
    }
    out
}

/// Parse text exposition back into samples. Comment and blank lines are
/// skipped; a malformed sample line is an error naming the line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}: {line}", ln + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('}') {
        // `name{...} value`: the value starts after the closing brace.
        Some(close) => {
            let tail = line[close + 1..].trim();
            (&line[..close + 1], tail)
        }
        None => line
            .split_once(' ')
            .ok_or_else(|| "missing value".to_string())?,
    };
    let value: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("bad value {value:?}"))?;
    let (name, labels) = match head.find('{') {
        None => (head.trim().to_string(), Vec::new()),
        Some(open) => {
            let name = head[..open].to_string();
            let body = head[open + 1..]
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name, parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label missing =".to_string())?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| "label value missing opening quote".to_string())?;
        // Find the closing quote, skipping escaped characters.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| "label value missing closing quote".to_string())?;
        labels.push((key, unescape_label(&rest[..end])));
        rest = rest[end + 1..].trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_marks_counters_and_gauges() {
        let text = render(&[
            Sample {
                name: "mrpic_wire_bytes_total".into(),
                labels: vec![("rank".into(), "0".into())],
                value: 42.0,
            },
            Sample {
                name: "mrpic_step_imbalance".into(),
                labels: vec![("rank".into(), "0".into())],
                value: 1.25,
            },
        ]);
        assert!(text.contains("# TYPE mrpic_wire_bytes_total counter\n"));
        assert!(text.contains("# TYPE mrpic_step_imbalance gauge\n"));
        assert!(text.contains("mrpic_wire_bytes_total{rank=\"0\"} 42\n"));
    }

    #[test]
    fn roundtrip_preserves_samples() {
        let samples = vec![
            Sample {
                name: "mrpic_uptime_seconds".into(),
                labels: vec![("source".into(), "run".into())],
                value: 12.5,
            },
            Sample {
                name: "mrpic_rank_count".into(),
                labels: Vec::new(),
                value: 2.0,
            },
            Sample {
                name: "mrpic_serve_job_steps_total".into(),
                labels: vec![
                    ("job".into(), "3".into()),
                    ("tenant".into(), "weird \"name\"\nwith\\stuff".into()),
                ],
                value: 75.0,
            },
        ];
        let back = parse(&render(&samples)).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("mrpic_ok 1\nnot a sample line at all").is_err());
        assert!(parse("name{unterminated=\"x} 1").is_err());
        assert!(parse("name{k=\"v\"} not_a_number").is_err());
        assert!(parse("na me 1").is_err());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let got = parse("# HELP x y\n\n# TYPE a gauge\na 3\n").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "a");
        assert_eq!(got[0].value, 3.0);
    }
}
