//! The flight recorder: a bounded ring of recent events per rank,
//! dumped as `blackbox.json` when something goes wrong.
//!
//! Triggers: invariant-guard trip, unrecoverable transport/rank loss,
//! panic (via [`install_panic_dump`]), and SIGUSR1 (via
//! [`arm_sigusr1`], polled from the step loop — the handler itself
//! only sets a flag, so it stays async-signal-safe). Each event
//! carries the step it happened at; the dump records the rank, mesh
//! generation, and the last recorded step so a post-mortem can line
//! the blackbox up against `summary.json`'s `failure_step`.

use mrpic_core::telemetry::StepRecord;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Top-level `schema` value of a `blackbox.json` document.
pub const BLACKBOX_SCHEMA: &str = "mrpic-blackbox-v1";

/// One entry in the flight-recorder ring.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FlightEvent {
    /// One completed step (the compressed essentials of a StepRecord).
    Step {
        step: u64,
        time: f64,
        seconds: f64,
        #[serde(default)]
        imbalance: Option<f64>,
        #[serde(default)]
        rank_count: Option<usize>,
    },
    /// A load-balance evaluation that completed at this step.
    Lb {
        step: u64,
        trigger_imbalance: f64,
        #[serde(default)]
        adopted: Option<String>,
        bytes_migrated: u64,
    },
    /// The NaN/Inf invariant guard tripped.
    GuardTrip {
        step: u64,
        phase: String,
        grid: String,
        component: String,
        box_id: usize,
    },
    /// A transport-layer error or rank loss.
    TransportError { step: u64, detail: String },
    /// A completed crash recovery (rollback + replay).
    Recovery {
        step: u64,
        dead_rank: usize,
        epoch_step: u64,
        replayed: u64,
    },
    /// An elastic rank-count change.
    Resize { step: u64, from: usize, to: usize },
    /// Free-form annotation from the driver.
    Note { step: u64, text: String },
}

impl FlightEvent {
    fn step(&self) -> u64 {
        match self {
            FlightEvent::Step { step, .. }
            | FlightEvent::Lb { step, .. }
            | FlightEvent::GuardTrip { step, .. }
            | FlightEvent::TransportError { step, .. }
            | FlightEvent::Recovery { step, .. }
            | FlightEvent::Resize { step, .. }
            | FlightEvent::Note { step, .. } => *step,
        }
    }
}

/// The serialized form of a blackbox dump.
#[derive(Debug, Serialize, Deserialize)]
pub struct BlackboxDump {
    pub schema: String,
    /// What triggered the dump: `"guard_trip"`, `"rank_loss"`,
    /// `"transport_loss"`, `"panic"`, or `"sigusr1"`.
    pub reason: String,
    pub rank: usize,
    pub generation: u64,
    /// Highest step across recorded events.
    pub last_step: u64,
    pub events: Vec<FlightEvent>,
}

/// Bounded ring of recent [`FlightEvent`]s for one rank.
#[derive(Debug)]
pub struct FlightRecorder {
    rank: usize,
    generation: u64,
    cap: usize,
    ring: VecDeque<FlightEvent>,
    path: PathBuf,
}

impl FlightRecorder {
    /// `path` is where dumps land (conventionally
    /// `<outdir>/blackbox.json`); `cap` bounds the ring.
    pub fn new(rank: usize, path: PathBuf, cap: usize) -> Self {
        Self {
            rank,
            generation: 0,
            cap: cap.max(1),
            ring: VecDeque::new(),
            path,
        }
    }

    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    pub fn push(&mut self, ev: FlightEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
    }

    /// Fold one step record into the ring: the step itself, its LB
    /// decision (if any), and its guard trip (if any).
    pub fn observe_record(&mut self, rec: &StepRecord) {
        self.push(FlightEvent::Step {
            step: rec.step,
            time: rec.time,
            seconds: rec.seconds,
            imbalance: rec.imbalance,
            rank_count: rec.rank_count,
        });
        if let Some(lb) = &rec.lb {
            self.push(FlightEvent::Lb {
                step: lb.step,
                trigger_imbalance: lb.trigger_imbalance,
                adopted: lb.adopted.clone(),
                bytes_migrated: lb.bytes_migrated,
            });
        }
        if let Some(g) = &rec.guard {
            self.push(FlightEvent::GuardTrip {
                step: g.step,
                phase: g.phase.clone(),
                grid: g.grid.clone(),
                component: g.component.clone(),
                box_id: g.box_id,
            });
        }
    }

    /// Highest step across recorded events, 0 when empty.
    pub fn last_step(&self) -> u64 {
        self.ring.iter().map(|e| e.step()).max().unwrap_or(0)
    }

    /// Write the ring as `blackbox.json`; returns the dump path.
    pub fn dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let dump = BlackboxDump {
            schema: BLACKBOX_SCHEMA.to_string(),
            reason: reason.to_string(),
            rank: self.rank,
            generation: self.generation,
            last_step: self.last_step(),
            events: self.ring.iter().cloned().collect(),
        };
        let text = serde_json::to_string_pretty(&dump)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(&self.path, text + "\n")?;
        Ok(self.path.clone())
    }
}

/// The process-wide recorder the panic hook and signal poll dump.
static RECORDER: Mutex<Option<FlightRecorder>> = Mutex::new(None);

/// Install `r` as the process-wide recorder (replacing any previous).
pub fn install_recorder(r: FlightRecorder) {
    *RECORDER.lock().unwrap() = Some(r);
}

/// Run `f` against the installed recorder, if any.
pub fn with_recorder<T>(f: impl FnOnce(&mut FlightRecorder) -> T) -> Option<T> {
    RECORDER.lock().ok()?.as_mut().map(f)
}

/// Dump the installed recorder; returns the dump path on success.
pub fn dump_recorder(reason: &str) -> Option<PathBuf> {
    let guard = RECORDER.lock().ok()?;
    let r = guard.as_ref()?;
    match r.dump(reason) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("warning: cannot write blackbox {}: {e}", r.path.display());
            None
        }
    }
}

/// Chain a panic hook that dumps the installed recorder (reason
/// `"panic"`) before the default hook runs. Call once per process.
pub fn install_panic_dump() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = dump_recorder("panic");
        prev(info);
    }));
}

static SIGUSR1_FLAG: AtomicBool = AtomicBool::new(false);

type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn on_sigusr1(_signum: i32) {
    SIGUSR1_FLAG.store(true, Ordering::SeqCst);
}

/// Route SIGUSR1 (10) into a flag the step loop polls via
/// [`sigusr1_pending`]. The handler only sets the flag; the dump
/// happens on the polling thread.
pub fn arm_sigusr1() {
    unsafe {
        signal(10, on_sigusr1);
    }
}

/// Consume a pending SIGUSR1, if one arrived since the last poll.
pub fn sigusr1_pending() -> bool {
    SIGUSR1_FLAG.swap(false, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mrpic_obs_bb_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn ring_is_bounded_and_tracks_last_step() {
        let dir = tmpdir("ring");
        let mut r = FlightRecorder::new(2, dir.join("blackbox.json"), 3);
        for step in 0..10u64 {
            r.push(FlightEvent::Step {
                step,
                time: 0.0,
                seconds: 1e-3,
                imbalance: None,
                rank_count: Some(2),
            });
        }
        assert_eq!(r.last_step(), 9);
        let path = r.dump("sigusr1").unwrap();
        let doc: BlackboxDump =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.schema, BLACKBOX_SCHEMA);
        assert_eq!(doc.rank, 2);
        assert_eq!(doc.last_step, 9);
        assert_eq!(doc.events.len(), 3, "ring must stay bounded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn guard_trip_lands_in_dump_with_matching_step() {
        use mrpic_core::telemetry::GuardTrip;
        let dir = tmpdir("guard");
        let mut r = FlightRecorder::new(0, dir.join("blackbox.json"), 64);
        let mut rec = blank_record(7);
        rec.guard = Some(GuardTrip {
            step: 7,
            phase: "maxwell".into(),
            grid: "parent".into(),
            component: "Ex".into(),
            box_id: 3,
        });
        r.observe_record(&rec);
        let path = r.dump("guard_trip").unwrap();
        let doc: BlackboxDump =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.reason, "guard_trip");
        assert_eq!(doc.last_step, 7);
        assert!(doc
            .events
            .iter()
            .any(|e| matches!(e, FlightEvent::GuardTrip { step: 7, .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn blank_record(step: u64) -> StepRecord {
        StepRecord {
            step,
            time: 0.0,
            dt: 1.0,
            seconds: 0.0,
            phases: Default::default(),
            comm: Default::default(),
            particles: vec![],
            pushed: 0,
            deleted: 0,
            window_shifts: 0,
            rebalances: 0,
            probes: None,
            guard: None,
            ranks: Vec::new(),
            rank_count: None,
            faults: None,
            imbalance: None,
            lb: None,
            trace_hists: Vec::new(),
            precision: Default::default(),
        }
    }

    #[test]
    fn global_recorder_dump_and_sigusr1_flag() {
        let dir = tmpdir("global");
        let mut r = FlightRecorder::new(1, dir.join("blackbox.json"), 8);
        r.set_generation(2);
        r.push(FlightEvent::TransportError {
            step: 4,
            detail: "peer closed".into(),
        });
        install_recorder(r);
        with_recorder(|r| {
            r.push(FlightEvent::Note {
                step: 5,
                text: "checkpoint".into(),
            })
        });
        let path = dump_recorder("transport_loss").expect("dump must succeed");
        let doc: BlackboxDump =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.generation, 2);
        assert_eq!(doc.last_step, 5);
        assert!(!sigusr1_pending());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
