//! Minimal HTTP/1.0 scrape endpoint (and matching client).
//!
//! Enough HTTP for a Prometheus scraper and `mrpic_top`, nothing more:
//! one thread accepts, one short-lived thread per connection reads the
//! request line, routes `GET /metrics` (text exposition) and
//! `GET /snapshot` (JSON [`FleetSnapshot`](crate::FleetSnapshot)), and
//! closes. Binding `127.0.0.1:0` works; the bound address comes back
//! from [`serve`] so callers can advertise the chosen port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::hub::MetricsHub;

/// Start serving `hub` on `addr` in a detached background thread;
/// returns the actually-bound address (resolves port 0).
pub fn serve(hub: MetricsHub, addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("mrpic-obs-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let hub = hub.clone();
                let _ = std::thread::Builder::new()
                    .name("mrpic-obs-conn".into())
                    .spawn(move || handle(hub, stream));
            }
        })?;
    Ok(bound)
}

fn handle(hub: MetricsHub, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Read until the end of the request headers (or the buffer cap —
    // scrapers send tiny requests).
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            (parts.next() == Some("GET")).then(|| parts.next())?
        })
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            hub.render_prometheus(),
        ),
        "/snapshot" => (
            "200 OK",
            "application/json",
            serde_json::to_string_pretty(&hub.snapshot()).unwrap_or_default(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// One-shot `GET http://{addr}{path}`; returns the response body.
/// Non-2xx statuses are errors.
pub fn get(addr: &str, path: &str) -> std::io::Result<String> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("cannot resolve {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    let ok = status
        .split_whitespace()
        .nth(1)
        .is_some_and(|code| code.starts_with('2'));
    if !ok {
        return Err(std::io::Error::other(format!("HTTP error: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::RankMetrics;

    #[test]
    fn serve_and_scrape_roundtrip() {
        let hub = MetricsHub::new("run");
        hub.update_rank(RankMetrics {
            rank: 0,
            step: 17,
            wire_bytes: 4242,
            imbalance: Some(1.1),
            ..RankMetrics::default()
        });
        let addr = serve(hub, "127.0.0.1:0").unwrap().to_string();

        let text = get(&addr, "/metrics").unwrap();
        let samples = crate::expo::parse(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "mrpic_wire_bytes_total" && s.value == 4242.0));

        let snap = get(&addr, "/snapshot").unwrap();
        let doc: serde_json::Value = serde_json::from_str(&snap).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(crate::SNAPSHOT_SCHEMA)
        );

        assert!(get(&addr, "/nope").is_err());
    }
}
