//! Fleet snapshot types and the per-rank sampler that feeds them.
//!
//! A [`RankMetrics`] is one rank's cumulative view — wire/logical
//! bytes, recv-wait and particle seconds, LB adoptions, guard trips —
//! plus windowed rates (step/s, wire bytes/s, recv-wait share)
//! computed between successive [`RankSampler::sample`] calls. The
//! [`MetricsHub`](crate::hub::MetricsHub) merges rank samples into a
//! [`FleetSnapshot`], the JSON form served at `GET /snapshot` and
//! written by `--metrics-out`; its `schema` key is how `mrpic_prof`
//! recognizes the file.

use mrpic_core::telemetry::StepRecord;
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::expo::Sample;

/// Top-level `schema` value of a [`FleetSnapshot`] JSON document.
pub const SNAPSHOT_SCHEMA: &str = "mrpic-metrics-v1";

/// One rank's metrics sample: cumulative counters since rank start plus
/// rates over the window since the previous sample.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RankMetrics {
    pub rank: usize,
    /// Mesh generation the rank last stepped at (bumps on elastic
    /// resize); attributes a sample to a rank-set epoch.
    #[serde(default)]
    pub generation: u64,
    /// Last completed step.
    pub step: u64,
    /// Simulation time at the last completed step [s].
    #[serde(default)]
    pub time: f64,
    /// Steps per wall second over the last sample window.
    #[serde(default)]
    pub step_rate: f64,
    /// Telemetry imbalance (max/mean busy) at the last step.
    #[serde(default)]
    pub imbalance: Option<f64>,
    /// Run-mean of the per-step imbalance.
    #[serde(default)]
    pub mean_imbalance: Option<f64>,
    /// Logical framed payload bytes sent (any transport).
    #[serde(default)]
    pub sent_bytes: u64,
    #[serde(default)]
    pub recv_bytes: u64,
    /// Physical wire bytes (socket frames incl. headers + CRC); zero on
    /// in-process transports.
    #[serde(default)]
    pub wire_bytes: u64,
    #[serde(default)]
    pub wire_flushes: u64,
    /// Wire throughput over the last sample window [bytes/s].
    #[serde(default)]
    pub wire_bytes_per_s: f64,
    /// Wall seconds spent in exchange (packing/sending/receiving).
    #[serde(default)]
    pub exchange_seconds: f64,
    /// Wall seconds blocked in `recv` waiting for a peer — idle, not work.
    #[serde(default)]
    pub recv_wait_seconds: f64,
    /// Wall seconds of particle work over owned boxes.
    #[serde(default)]
    pub particle_seconds: f64,
    /// Recv-wait share of stepped wall time over the last window [0, 1].
    #[serde(default)]
    pub recv_wait_frac: f64,
    /// Particles shipped to other ranks during redistribution.
    #[serde(default)]
    pub migrated_out: u64,
    /// Load-balance plans adopted so far.
    #[serde(default)]
    pub lb_adoptions: u64,
    /// Step of the last adopted LB plan, if any.
    #[serde(default)]
    pub last_lb_step: Option<u64>,
    /// NaN/Inf invariant-guard trips observed.
    #[serde(default)]
    pub guard_trips: u64,
    /// Comm-layer retries (transient faults + corrupt frames).
    #[serde(default)]
    pub fault_retries: u64,
    /// Completed crash recoveries this rank participated in.
    #[serde(default)]
    pub recoveries: u64,
    /// Cumulative `mrpic_trace` registry counters `(name, value)`;
    /// per-process, so only meaningful per-rank for worker processes.
    #[serde(default)]
    pub counters: Vec<(String, u64)>,
}

/// `mrpic_serve` fleet state: queue/slot occupancy plus per-job and
/// per-tenant rollups.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeMetrics {
    pub queue_depth: u64,
    pub running: u64,
    pub slots: u64,
    pub quantum: u64,
    #[serde(default)]
    pub jobs: Vec<JobMetrics>,
    #[serde(default)]
    pub tenants: Vec<TenantMetrics>,
}

#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    pub job_id: u64,
    pub tenant: String,
    pub state: String,
    pub priority: i64,
    pub steps_done: u64,
    pub preemptions: u64,
    /// Slot currently executing the job, if any.
    #[serde(default)]
    pub slot: Option<u64>,
    #[serde(default)]
    pub mean_imbalance: Option<f64>,
}

#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantMetrics {
    pub tenant: String,
    pub jobs: u64,
    pub running: u64,
    pub waiting: u64,
}

/// Point-in-time merged view of the whole fleet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Always [`SNAPSHOT_SCHEMA`]; lets consumers (`mrpic_prof`,
    /// `mrpic_top`) detect the document kind.
    pub schema: String,
    /// Who merged it: `"run"` (supervisor / local runner) or `"serve"`.
    pub source: String,
    /// Seconds since the hub was created.
    pub uptime_seconds: f64,
    /// Max last-completed step across ranks.
    pub step: u64,
    pub ranks: Vec<RankMetrics>,
    #[serde(default)]
    pub serve: Option<ServeMetrics>,
}

/// Sanitize an arbitrary counter name into a Prometheus metric-name
/// fragment (`dist.msg_bytes` → `dist_msg_bytes`).
fn metric_fragment(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl FleetSnapshot {
    /// Flatten into exposition samples. Names ending in `_total` are
    /// counters, everything else gauges (see [`crate::expo::render`]).
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let gauge = |name: &str, rank: usize, v: f64| Sample {
            name: name.to_string(),
            labels: vec![("rank".to_string(), rank.to_string())],
            value: v,
        };
        out.push(Sample {
            name: "mrpic_uptime_seconds".into(),
            labels: vec![("source".to_string(), self.source.clone())],
            value: self.uptime_seconds,
        });
        out.push(Sample {
            name: "mrpic_rank_count".into(),
            labels: Vec::new(),
            value: self.ranks.len() as f64,
        });
        for r in &self.ranks {
            let rk = r.rank;
            out.push(gauge("mrpic_step", rk, r.step as f64));
            out.push(gauge("mrpic_step_rate", rk, r.step_rate));
            if let Some(x) = r.imbalance {
                out.push(gauge("mrpic_step_imbalance", rk, x));
            }
            if let Some(x) = r.mean_imbalance {
                out.push(gauge("mrpic_mean_imbalance", rk, x));
            }
            out.push(gauge("mrpic_generation", rk, r.generation as f64));
            out.push(gauge("mrpic_wire_bytes_total", rk, r.wire_bytes as f64));
            out.push(gauge("mrpic_wire_flushes_total", rk, r.wire_flushes as f64));
            out.push(gauge("mrpic_sent_bytes_total", rk, r.sent_bytes as f64));
            out.push(gauge("mrpic_recv_bytes_total", rk, r.recv_bytes as f64));
            out.push(gauge("mrpic_wire_bytes_per_second", rk, r.wire_bytes_per_s));
            out.push(gauge(
                "mrpic_exchange_seconds_total",
                rk,
                r.exchange_seconds,
            ));
            out.push(gauge(
                "mrpic_recv_wait_seconds_total",
                rk,
                r.recv_wait_seconds,
            ));
            out.push(gauge(
                "mrpic_particle_seconds_total",
                rk,
                r.particle_seconds,
            ));
            out.push(gauge("mrpic_recv_wait_fraction", rk, r.recv_wait_frac));
            out.push(gauge("mrpic_migrated_out_total", rk, r.migrated_out as f64));
            out.push(gauge("mrpic_lb_adoptions_total", rk, r.lb_adoptions as f64));
            if let Some(s) = r.last_lb_step {
                out.push(gauge("mrpic_last_lb_step", rk, s as f64));
            }
            out.push(gauge("mrpic_guard_trips_total", rk, r.guard_trips as f64));
            out.push(gauge(
                "mrpic_fault_retries_total",
                rk,
                r.fault_retries as f64,
            ));
            out.push(gauge("mrpic_recoveries_total", rk, r.recoveries as f64));
            for (name, v) in &r.counters {
                out.push(gauge(
                    &format!("mrpic_trace_{}_total", metric_fragment(name)),
                    rk,
                    *v as f64,
                ));
            }
        }
        if let Some(s) = &self.serve {
            let plain = |name: &str, v: f64| Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: v,
            };
            out.push(plain("mrpic_serve_queue_depth", s.queue_depth as f64));
            out.push(plain("mrpic_serve_running", s.running as f64));
            out.push(plain("mrpic_serve_slots", s.slots as f64));
            out.push(plain("mrpic_serve_quantum_steps", s.quantum as f64));
            out.push(plain("mrpic_serve_uptime_seconds", self.uptime_seconds));
            for j in &s.jobs {
                let labels = vec![
                    ("job".to_string(), j.job_id.to_string()),
                    ("tenant".to_string(), j.tenant.clone()),
                    ("state".to_string(), j.state.clone()),
                ];
                out.push(Sample {
                    name: "mrpic_serve_job_steps_total".into(),
                    labels: labels.clone(),
                    value: j.steps_done as f64,
                });
                out.push(Sample {
                    name: "mrpic_serve_job_preemptions_total".into(),
                    labels,
                    value: j.preemptions as f64,
                });
            }
            for t in &s.tenants {
                let labels = vec![("tenant".to_string(), t.tenant.clone())];
                for (name, v) in [
                    ("mrpic_serve_tenant_jobs", t.jobs),
                    ("mrpic_serve_tenant_running", t.running),
                    ("mrpic_serve_tenant_waiting", t.waiting),
                ] {
                    out.push(Sample {
                        name: name.into(),
                        labels: labels.clone(),
                        value: v as f64,
                    });
                }
            }
        }
        out
    }
}

/// Folds one rank's [`StepRecord`] stream into successive
/// [`RankMetrics`] samples.
///
/// `observe` is called every step (cheap field reads); `sample` is
/// called at the push cadence and computes the windowed rates. For
/// distributed records the sampler reads its own rank's
/// `RankStepComm` row; serial records fall back to the step-level
/// `CommStats` so single-rank runs still report.
pub struct RankSampler {
    rank: usize,
    /// Pull process-global `mrpic_trace` registry counters into each
    /// sample. Only set this for one sampler per process.
    pub include_registry: bool,
    cum: RankMetrics,
    imb_sum: f64,
    imb_steps: u64,
    window_t0: Option<Instant>,
    window_steps: u64,
    window_wire0: u64,
    window_busy: f64,
    window_wait: f64,
}

impl RankSampler {
    pub fn new(rank: usize) -> Self {
        Self {
            rank,
            include_registry: false,
            cum: RankMetrics {
                rank,
                ..RankMetrics::default()
            },
            imb_sum: 0.0,
            imb_steps: 0,
            window_t0: None,
            window_steps: 0,
            window_wire0: 0,
            window_busy: 0.0,
            window_wait: 0.0,
        }
    }

    pub fn set_generation(&mut self, generation: u64) {
        self.cum.generation = generation;
    }

    /// Fold one step record in.
    pub fn observe(&mut self, rec: &StepRecord) {
        let c = &mut self.cum;
        c.step = rec.step;
        c.time = rec.time;
        c.imbalance = rec.imbalance;
        if let Some(x) = rec.imbalance {
            self.imb_sum += x;
            self.imb_steps += 1;
            c.mean_imbalance = Some(self.imb_sum / self.imb_steps as f64);
        }
        if let Some(row) = rec.ranks.iter().find(|r| r.rank == self.rank) {
            c.sent_bytes += row.sent_bytes;
            c.recv_bytes += row.recv_bytes;
            c.wire_bytes += row.wire_bytes;
            c.wire_flushes += row.wire_flushes;
            c.exchange_seconds += row.exchange_seconds;
            c.recv_wait_seconds += row.recv_wait_seconds;
            c.particle_seconds += row.particle_seconds;
            c.migrated_out += row.migrated_out;
            self.window_wait += row.recv_wait_seconds;
        } else {
            c.sent_bytes += rec.comm.bytes;
            c.recv_bytes += rec.comm.bytes;
            c.exchange_seconds += rec.comm.seconds;
            c.particle_seconds += rec.phases.gather + rec.phases.push + rec.phases.deposit;
        }
        self.window_busy += rec.seconds;
        if let Some(lb) = &rec.lb {
            if lb.adopted.is_some() {
                c.lb_adoptions += 1;
                c.last_lb_step = Some(lb.step);
            }
        }
        if rec.guard.is_some() {
            c.guard_trips += 1;
        }
        if let Some(f) = &rec.faults {
            c.fault_retries += f.retries;
            c.recoveries += f.recoveries;
        }
        self.window_steps += 1;
    }

    /// Produce a sample: cumulative counters plus rates over the window
    /// since the previous `sample` call (zero on the first).
    pub fn sample(&mut self) -> RankMetrics {
        let now = Instant::now();
        let mut m = self.cum.clone();
        if let Some(t0) = self.window_t0 {
            let dt = now.duration_since(t0).as_secs_f64();
            if dt > 0.0 && self.window_steps > 0 {
                m.step_rate = self.window_steps as f64 / dt;
                m.wire_bytes_per_s = (m.wire_bytes - self.window_wire0) as f64 / dt;
            }
        }
        if self.window_busy > 0.0 {
            m.recv_wait_frac = (self.window_wait / self.window_busy).clamp(0.0, 1.0);
        }
        if self.include_registry {
            m.counters = mrpic_trace::metrics::counters_snapshot();
        }
        self.window_t0 = Some(now);
        self.window_steps = 0;
        self.window_wire0 = m.wire_bytes;
        self.window_busy = 0.0;
        self.window_wait = 0.0;
        self.cum.step_rate = m.step_rate;
        self.cum.wire_bytes_per_s = m.wire_bytes_per_s;
        self.cum.recv_wait_frac = m.recv_wait_frac;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrpic_core::exchange::RankStepComm;
    use mrpic_core::telemetry::{GuardTrip, PhaseTimes, StepRecord};

    fn rec(step: u64, rank_row: Option<RankStepComm>) -> StepRecord {
        StepRecord {
            step,
            time: step as f64 * 1e-16,
            dt: 1e-16,
            seconds: 1e-3,
            phases: PhaseTimes {
                gather: 1e-4,
                push: 2e-4,
                deposit: 3e-4,
                ..PhaseTimes::default()
            },
            comm: mrpic_amr_comm(),
            particles: vec![],
            pushed: 0,
            deleted: 0,
            window_shifts: 0,
            rebalances: 0,
            probes: None,
            guard: None,
            ranks: rank_row.into_iter().collect(),
            rank_count: None,
            faults: None,
            imbalance: Some(1.5),
            lb: None,
            trace_hists: Vec::new(),
            precision: Default::default(),
        }
    }

    fn mrpic_amr_comm() -> mrpic_amr::CommStats {
        mrpic_amr::CommStats {
            bytes: 100,
            messages: 2,
            exchanges: 1,
            plan_builds: 0,
            seconds: 1e-5,
        }
    }

    #[test]
    fn sampler_accumulates_rank_rows() {
        let mut s = RankSampler::new(1);
        for step in 0..4 {
            s.observe(&rec(
                step,
                Some(RankStepComm {
                    rank: 1,
                    sent_bytes: 10,
                    wire_bytes: 50,
                    recv_wait_seconds: 2e-4,
                    particle_seconds: 6e-4,
                    ..Default::default()
                }),
            ));
        }
        let m = s.sample();
        assert_eq!(m.rank, 1);
        assert_eq!(m.step, 3);
        assert_eq!(m.sent_bytes, 40);
        assert_eq!(m.wire_bytes, 200);
        assert_eq!(m.imbalance, Some(1.5));
        assert!((m.mean_imbalance.unwrap() - 1.5).abs() < 1e-12);
        // 4 steps of 1e-3 s busy, 2e-4 s recv-wait each.
        assert!((m.recv_wait_frac - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sampler_serial_fallback_uses_comm_stats() {
        let mut s = RankSampler::new(0);
        s.observe(&rec(7, None));
        let m = s.sample();
        assert_eq!(m.sent_bytes, 100);
        assert_eq!(m.wire_bytes, 0);
        assert!((m.particle_seconds - 6e-4).abs() < 1e-12);
    }

    #[test]
    fn sampler_counts_guard_trips() {
        let mut s = RankSampler::new(0);
        let mut r = rec(3, None);
        r.guard = Some(GuardTrip {
            step: 3,
            phase: "maxwell".into(),
            grid: "parent".into(),
            component: "Ex".into(),
            box_id: 0,
        });
        s.observe(&r);
        assert_eq!(s.sample().guard_trips, 1);
    }

    #[test]
    fn snapshot_samples_cover_pinned_names() {
        let snap = FleetSnapshot {
            schema: SNAPSHOT_SCHEMA.into(),
            source: "run".into(),
            uptime_seconds: 1.0,
            step: 9,
            ranks: vec![RankMetrics {
                rank: 0,
                step: 9,
                wire_bytes: 1234,
                imbalance: Some(1.25),
                counters: vec![("dist.retries".into(), 3)],
                ..RankMetrics::default()
            }],
            serve: None,
        };
        let samples = snap.samples();
        let find = |n: &str| samples.iter().find(|s| s.name == n).expect(n);
        assert_eq!(find("mrpic_wire_bytes_total").value, 1234.0);
        assert_eq!(find("mrpic_step_imbalance").value, 1.25);
        assert_eq!(find("mrpic_trace_dist_retries_total").value, 3.0);
        assert_eq!(
            find("mrpic_wire_bytes_total").labels,
            vec![("rank".to_string(), "0".to_string())]
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = FleetSnapshot {
            schema: SNAPSHOT_SCHEMA.into(),
            source: "serve".into(),
            uptime_seconds: 2.5,
            step: 40,
            ranks: vec![RankMetrics {
                rank: 1,
                step: 40,
                last_lb_step: Some(30),
                ..RankMetrics::default()
            }],
            serve: Some(ServeMetrics {
                queue_depth: 3,
                running: 2,
                slots: 2,
                quantum: 25,
                jobs: vec![JobMetrics {
                    job_id: 1,
                    tenant: "hi".into(),
                    state: "Running".into(),
                    priority: 5,
                    steps_done: 75,
                    preemptions: 1,
                    slot: Some(0),
                    mean_imbalance: Some(1.1),
                }],
                tenants: vec![TenantMetrics {
                    tenant: "hi".into(),
                    jobs: 1,
                    running: 1,
                    waiting: 0,
                }],
            }),
        };
        let s = serde_json::to_string(&snap).unwrap();
        let back: FleetSnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(back.schema, SNAPSHOT_SCHEMA);
        assert_eq!(back.ranks[0].last_lb_step, Some(30));
        let sv = back.serve.unwrap();
        assert_eq!(sv.jobs[0].slot, Some(0));
        assert_eq!(sv.tenants[0].tenant, "hi");
    }
}
