//! The fleet metrics hub: merge point for per-rank samples.
//!
//! Cloneable handle around shared state; producers call
//! [`MetricsHub::update_rank`] (from the step loop, or from the
//! supervisor thread draining `Metrics` frames) and consumers render a
//! [`FleetSnapshot`] on demand. One lock, held only for a map insert or
//! a clone-out — cheap enough for the <1% telemetry budget.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::expo;
use crate::snapshot::{FleetSnapshot, RankMetrics, ServeMetrics, SNAPSHOT_SCHEMA};

struct HubInner {
    source: String,
    started: Instant,
    ranks: BTreeMap<usize, RankMetrics>,
    serve: Option<ServeMetrics>,
}

/// Cloneable, thread-safe merge point for fleet metrics.
#[derive(Clone)]
pub struct MetricsHub {
    inner: Arc<Mutex<HubInner>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsHub")
    }
}

impl MetricsHub {
    /// `source` names the merging process in the snapshot: `"run"` for
    /// the local runner / process-mesh supervisor, `"serve"` for the
    /// job server.
    pub fn new(source: &str) -> Self {
        Self {
            inner: Arc::new(Mutex::new(HubInner {
                source: source.to_string(),
                started: Instant::now(),
                ranks: BTreeMap::new(),
                serve: None,
            })),
        }
    }

    /// Merge one rank's sample; the newest sample per rank wins, except
    /// that a stale generation never overwrites a newer one.
    pub fn update_rank(&self, m: RankMetrics) {
        let mut inner = self.inner.lock().unwrap();
        match inner.ranks.get(&m.rank) {
            Some(old) if old.generation > m.generation => {}
            _ => {
                inner.ranks.insert(m.rank, m);
            }
        }
    }

    /// Replace the server-side fleet state (job/tenant/queue rollups).
    pub fn set_serve(&self, s: ServeMetrics) {
        self.inner.lock().unwrap().serve = Some(s);
    }

    /// Drop ranks at or beyond `nranks` (after an elastic shrink).
    pub fn retain_ranks(&self, nranks: usize) {
        self.inner.lock().unwrap().ranks.retain(|&r, _| r < nranks);
    }

    pub fn snapshot(&self) -> FleetSnapshot {
        let inner = self.inner.lock().unwrap();
        FleetSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            source: inner.source.clone(),
            uptime_seconds: inner.started.elapsed().as_secs_f64(),
            step: inner.ranks.values().map(|m| m.step).max().unwrap_or(0),
            ranks: inner.ranks.values().cloned().collect(),
            serve: inner.serve.clone(),
        }
    }

    /// Render the current snapshot as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        expo::render(&self.snapshot().samples())
    }

    /// Write the current snapshot as pretty JSON (the `--metrics-out`
    /// artifact and `mrpic_prof`'s metrics-snapshot input kind).
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(&self.snapshot())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut f = std::fs::File::create(path)?;
        f.write_all(text.as_bytes())?;
        f.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_sample_wins_but_generations_never_regress() {
        let hub = MetricsHub::new("run");
        hub.update_rank(RankMetrics {
            rank: 0,
            step: 5,
            generation: 1,
            ..RankMetrics::default()
        });
        hub.update_rank(RankMetrics {
            rank: 0,
            step: 3,
            generation: 0,
            ..RankMetrics::default()
        });
        let snap = hub.snapshot();
        assert_eq!(snap.ranks.len(), 1);
        assert_eq!(snap.ranks[0].step, 5);
        assert_eq!(snap.step, 5);
    }

    #[test]
    fn retain_ranks_drops_shrunk_ranks() {
        let hub = MetricsHub::new("run");
        for r in 0..4 {
            hub.update_rank(RankMetrics {
                rank: r,
                step: 1,
                ..RankMetrics::default()
            });
        }
        hub.retain_ranks(2);
        assert_eq!(hub.snapshot().ranks.len(), 2);
    }

    #[test]
    fn prometheus_render_parses_back() {
        let hub = MetricsHub::new("run");
        hub.update_rank(RankMetrics {
            rank: 0,
            step: 10,
            wire_bytes: 999,
            imbalance: Some(1.5),
            ..RankMetrics::default()
        });
        let text = hub.render_prometheus();
        let samples = crate::expo::parse(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "mrpic_wire_bytes_total" && s.value == 999.0));
    }

    #[test]
    fn json_snapshot_carries_schema() {
        let hub = MetricsHub::new("serve");
        let dir = std::env::temp_dir().join(format!("mrpic_obs_hub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        hub.write_json(&path).unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(SNAPSHOT_SCHEMA)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
