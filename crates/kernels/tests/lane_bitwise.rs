//! Property tests: the lane-blocked kernels are bitwise identical to
//! the scalar reference kernels for random particle sets straddling
//! box edges.
//!
//! Positions are biased toward the extremes of the legal range, so
//! stencil windows routinely touch the first and last stored rows —
//! the exact spot where a top-edge off-by-one in the interior check
//! would read/write one past a row with unchecked indexing. The
//! deposit tests additionally give `jx` a one-point-shorter x extent:
//! legal for the scalar kernel (its jx sweep writes one fewer x point)
//! but failing the lane layer's conservative containment check, so
//! whole blocks genuinely take the boundary scalar-fallback path.

use mrpic_kernels::deposit::{esirkepov2, esirkepov3, JViews};
use mrpic_kernels::gather::{gather2, gather3, EmOut, EmViews};
use mrpic_kernels::lanes::Lanes;
use mrpic_kernels::shape::{dual, Cubic, Linear, Quadratic, Shape};
use mrpic_kernels::view::{FieldView, FieldViewMut, Geom};
use proptest::prelude::*;

const NX: i64 = 16;
const NY: i64 = 12;
const NZ: i64 = 14;
const LO: [i64; 3] = [-3, -2, -4];

fn geom() -> Geom {
    // Unit cells anchored at 0: cell coordinate == position.
    Geom {
        xmin: [0.0; 3],
        dx: [1.0; 3],
    }
}

fn fill(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Unit-interval coordinate biased toward the edges of the range: 20%
/// exactly 0, 20% exactly 1, the rest uniform.
fn edge_u() -> impl Strategy<Value = f64> {
    (0usize..10, 0.0..1.0f64).prop_map(|(k, u)| match k {
        0 | 1 => 0.0,
        2 | 3 => 1.0,
        _ => u,
    })
}

/// Nudge `xi` until both stagger variants' windows fit `[lo, lo+ext)`;
/// edge-touching values are kept as-is.
fn clamp_gather<S: Shape>(mut xi: f64, lo: i64, ext: i64) -> f64 {
    loop {
        let (i_n, _) = S::eval::<f64>(xi);
        let (i_h, _) = S::eval::<f64>(xi - 0.5);
        let mn = i_n.min(i_h);
        let mx = i_n.max(i_h);
        if mn >= lo && mx + S::SUPPORT as i64 <= lo + ext {
            return xi;
        }
        xi += if mn < lo { 0.5 } else { -0.5 };
    }
}

/// Nudge an old/new position pair until the dual (Esirkepov) window
/// fits `[lo, lo+ext)`, preserving the displacement.
fn clamp_pair<S: Shape>(mut a: f64, mut b: f64, lo: i64, ext: i64) -> (f64, f64) {
    let len = S::SUPPORT as i64 + 1;
    loop {
        let (anc, _, _) = dual::<S, f64>(a, b);
        if anc >= lo && anc + len <= lo + ext {
            return (a, b);
        }
        let d = if anc < lo { 0.5 } else { -0.5 };
        a += d;
        b += d;
    }
}

fn view(data: &[f64], half: [bool; 3]) -> FieldView<'_, f64> {
    FieldView {
        data,
        lo: LO,
        nx: NX,
        nxy: NX * NY,
        half,
    }
}

fn em_views(store: &[Vec<f64>; 6]) -> EmViews<'_, f64> {
    EmViews {
        ex: view(&store[0], [true, false, false]),
        ey: view(&store[1], [false, true, false]),
        ez: view(&store[2], [false, false, true]),
        bx: view(&store[3], [false, true, true]),
        by: view(&store[4], [true, false, true]),
        bz: view(&store[5], [true, true, false]),
    }
}

/// J views; `jx` is one point shorter along x (its own strides and
/// data), which is what drives blocks onto the scalar fallback.
fn j_views(store: &mut [Vec<f64>; 3]) -> JViews<'_, f64> {
    let [jx, jy, jz] = store;
    JViews {
        jx: FieldViewMut {
            data: jx,
            lo: LO,
            nx: NX - 1,
            nxy: (NX - 1) * NY,
            half: [true, false, false],
        },
        jy: FieldViewMut {
            data: jy,
            lo: LO,
            nx: NX,
            nxy: NX * NY,
            half: [false, true, false],
        },
        jz: FieldViewMut {
            data: jz,
            lo: LO,
            nx: NX,
            nxy: NX * NY,
            half: [false, false, true],
        },
    }
}

fn j_store() -> [Vec<f64>; 3] {
    [
        vec![0.0; ((NX - 1) * NY * NZ) as usize],
        vec![0.0; (NX * NY * NZ) as usize],
        vec![0.0; (NX * NY * NZ) as usize],
    ]
}

fn run_gather<S: Shape, const W: usize>(us: &[(f64, f64, f64)], dim2: bool) {
    let store: [Vec<f64>; 6] =
        std::array::from_fn(|i| fill(77 + i as u64, (NX * NY * NZ) as usize));
    let f = em_views(&store);
    let g = geom();
    let n = us.len();
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut z = Vec::new();
    for &(ux, uy, uz) in us {
        x.push(clamp_gather::<S>(LO[0] as f64 + ux * NX as f64, LO[0], NX));
        y.push(clamp_gather::<S>(LO[1] as f64 + uy * NY as f64, LO[1], NY));
        z.push(clamp_gather::<S>(LO[2] as f64 + uz * NZ as f64, LO[2], NZ));
    }
    let mut a = vec![vec![0.0f64; n]; 6];
    let mut b = vec![vec![0.0f64; n]; 6];
    let run = |o: &mut Vec<Vec<f64>>, lanes: bool| {
        let [o0, o1, o2, o3, o4, o5] = &mut o[..] else {
            unreachable!()
        };
        let mut out = EmOut {
            ex: o0,
            ey: o1,
            ez: o2,
            bx: o3,
            by: o4,
            bz: o5,
        };
        match (dim2, lanes) {
            (false, false) => gather3::<S, f64>(&x, &y, &z, &g, &f, &mut out),
            (false, true) => Lanes::<W>::gather3::<S, f64>(&x, &y, &z, &g, &f, &mut out),
            (true, false) => gather2::<S, f64>(&x, &z, &g, &f, &mut out),
            (true, true) => Lanes::<W>::gather2::<S, f64>(&x, &z, &g, &f, &mut out),
        }
    };
    run(&mut a, false);
    run(&mut b, true);
    for c in 0..6 {
        for p in 0..n {
            assert_eq!(
                a[c][p].to_bits(),
                b[c][p].to_bits(),
                "comp {c} particle {p}"
            );
        }
    }
}

#[allow(clippy::type_complexity)]
fn run_deposit<S: Shape, const W: usize>(
    parts: &[((f64, f64, f64), (f64, f64, f64), f64)],
    dim2: bool,
) {
    let g = geom();
    let (mut x0, mut y0, mut z0) = (Vec::new(), Vec::new(), Vec::new());
    let (mut x1, mut y1, mut z1) = (Vec::new(), Vec::new(), Vec::new());
    let mut w = Vec::new();
    let mut vy = Vec::new();
    for &((ux, uy, uz), (dx, dy, dz), wt) in parts {
        let (a, b) = clamp_pair::<S>(
            LO[0] as f64 + ux * NX as f64,
            LO[0] as f64 + ux * NX as f64 + dx,
            LO[0],
            NX,
        );
        x0.push(a);
        x1.push(b);
        let (a, b) = clamp_pair::<S>(
            LO[1] as f64 + uy * NY as f64,
            LO[1] as f64 + uy * NY as f64 + dy,
            LO[1],
            NY,
        );
        y0.push(a);
        y1.push(b);
        let (a, b) = clamp_pair::<S>(
            LO[2] as f64 + uz * NZ as f64,
            LO[2] as f64 + uz * NZ as f64 + dz,
            LO[2],
            NZ,
        );
        z0.push(a);
        z1.push(b);
        w.push(1.0 + wt);
        vy.push(1e6 * (wt - 0.5));
    }
    let q = 1.6e-19;
    let dt = 1e-9;
    let mut sa = j_store();
    let mut sb = j_store();
    if dim2 {
        let mut j = j_views(&mut sa);
        esirkepov2::<S, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &g, &mut j);
        let mut j = j_views(&mut sb);
        Lanes::<W>::esirkepov2::<S, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &g, &mut j);
    } else {
        let mut j = j_views(&mut sa);
        esirkepov3::<S, f64>(&x0, &y0, &z0, &x1, &y1, &z1, &w, q, dt, &g, &mut j);
        let mut j = j_views(&mut sb);
        Lanes::<W>::esirkepov3::<S, f64>(&x0, &y0, &z0, &x1, &y1, &z1, &w, q, dt, &g, &mut j);
    }
    for c in 0..3 {
        for i in 0..sa[c].len() {
            assert_eq!(sa[c][i].to_bits(), sb[c][i].to_bits(), "comp {c} cell {i}");
        }
    }
}

fn units() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((edge_u(), edge_u(), edge_u()), 1..40)
}

#[allow(clippy::type_complexity)]
fn moves() -> impl Strategy<Value = Vec<((f64, f64, f64), (f64, f64, f64), f64)>> {
    let d = -0.45..0.45f64;
    prop::collection::vec(
        (
            (edge_u(), edge_u(), edge_u()),
            (d.clone(), d.clone(), d),
            0.0..1.0f64,
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gather_bitwise_at_edges(us in units(), order in 1usize..4, dim2 in any::<bool>()) {
        match order {
            1 => run_gather::<Linear, 4>(&us, dim2),
            2 => run_gather::<Quadratic, 8>(&us, dim2),
            _ => run_gather::<Cubic, 16>(&us, dim2),
        }
    }

    #[test]
    fn deposit_bitwise_at_edges(parts in moves(), order in 1usize..4, dim2 in any::<bool>()) {
        match order {
            1 => run_deposit::<Linear, 8>(&parts, dim2),
            2 => run_deposit::<Quadratic, 4>(&parts, dim2),
            _ => run_deposit::<Cubic, 16>(&parts, dim2),
        }
    }
}
