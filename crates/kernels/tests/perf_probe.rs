//! Single-thread ns/particle probe of the hot particle kernels, on a
//! workload shaped like the `step_loop` uniform-plasma bench case (2-D,
//! quadratic shapes, one 32x32 box with guards, cell-ordered particles).
//!
//! Ignored by default — it is a measurement aid, not a correctness test:
//!
//! ```text
//! cargo test -p mrpic-kernels --release --test perf_probe -- --ignored --nocapture
//! ```

use mrpic_kernels::deposit::{esirkepov2, esirkepov2_blocked, JViews};
use mrpic_kernels::gather::{gather2, gather2_blocked, EmOut, EmViews};
use mrpic_kernels::lanes::Lanes;
use mrpic_kernels::shape::{dual, Quadratic};
use mrpic_kernels::view::{FieldView, FieldViewMut, Geom};
use std::time::Instant;

const NXC: i64 = 32; // interior cells per axis
const NG: i64 = 4; // guard points
const NP: usize = 4096;
const REPS: usize = 200;

struct Rng(u64);
impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn npts() -> i64 {
    NXC + 1 + 2 * NG
}

fn grid(seed: u64) -> Vec<f64> {
    let mut r = Rng(seed);
    (0..(npts() * npts()) as usize)
        .map(|_| r.next_f64() * 2.0 - 1.0)
        .collect()
}

fn view<'a>(data: &'a [f64], half: [bool; 3]) -> FieldView<'a, f64> {
    FieldView {
        data,
        lo: [-NG, 0, -NG],
        nx: npts(),
        nxy: npts(),
        half,
    }
}

type ParticleBufs = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

fn particles() -> ParticleBufs {
    let mut r = Rng(42);
    let (mut x0, mut z0, mut x1, mut z1) = (
        Vec::with_capacity(NP),
        Vec::with_capacity(NP),
        Vec::with_capacity(NP),
        Vec::with_capacity(NP),
    );
    // Cell-ordered, 4 per cell, like the sorted production buffers.
    let per_cell = NP / ((NXC * NXC) as usize);
    for cz in 0..NXC {
        for cx in 0..NXC {
            for _ in 0..per_cell.max(1) {
                if x0.len() == NP {
                    break;
                }
                let x = cx as f64 + r.next_f64();
                let z = cz as f64 + r.next_f64();
                x0.push(x * 1e-6);
                z0.push(z * 1e-6);
                x1.push((x + 0.2 * (r.next_f64() - 0.5)) * 1e-6);
                z1.push((z + 0.2 * (r.next_f64() - 0.5)) * 1e-6);
            }
        }
    }
    let vy: Vec<f64> = (0..NP).map(|_| 1.0e6 * (r.next_f64() - 0.5)).collect();
    let w = vec![3.0e5; NP];
    (x0, z0, x1, z1, vy, w)
}

fn time(label: &str, mut f: impl FnMut()) {
    f(); // warm
    let t = Instant::now();
    for _ in 0..REPS {
        f();
    }
    let ns = t.elapsed().as_nanos() as f64 / (REPS * NP) as f64;
    println!("{label:<28} {ns:>7.2} ns/particle");
}

#[test]
#[ignore = "timing probe, run explicitly with --ignored --nocapture"]
fn kernel_ns_per_particle() {
    let geom = Geom {
        xmin: [0.0; 3],
        dx: [1e-6; 3],
    };
    let store: Vec<Vec<f64>> = (0..6).map(|c| grid(100 + c as u64)).collect();
    let f = EmViews {
        ex: view(&store[0], [true, false, false]),
        ey: view(&store[1], [false, true, false]),
        ez: view(&store[2], [false, false, true]),
        bx: view(&store[3], [false, true, true]),
        by: view(&store[4], [true, false, true]),
        bz: view(&store[5], [true, true, false]),
    };
    let (x0, z0, x1, z1, vy, w) = particles();
    let mut em = vec![vec![0.0f64; NP]; 6];

    macro_rules! em_out {
        ($em:ident) => {{
            let [e0, e1, e2, e3, e4, e5] = &mut $em[..] else {
                unreachable!()
            };
            EmOut {
                ex: e0,
                ey: e1,
                ez: e2,
                bx: e3,
                by: e4,
                bz: e5,
            }
        }};
    }

    time("gather2 scalar", || {
        let mut out = em_out!(em);
        gather2::<Quadratic, f64>(&x0, &z0, &geom, &f, &mut out);
    });
    time("gather2 blocked", || {
        let mut out = em_out!(em);
        gather2_blocked::<Quadratic, f64>(&x0, &z0, &geom, &f, &mut out);
    });
    time("gather2 lanes W=4", || {
        let mut out = em_out!(em);
        Lanes::<4>::gather2::<Quadratic, f64>(&x0, &z0, &geom, &f, &mut out);
    });
    time("gather2 lanes W=8", || {
        let mut out = em_out!(em);
        Lanes::<8>::gather2::<Quadratic, f64>(&x0, &z0, &geom, &f, &mut out);
    });
    time("gather2 lanes W=16", || {
        let mut out = em_out!(em);
        Lanes::<16>::gather2::<Quadratic, f64>(&x0, &z0, &geom, &f, &mut out);
    });

    let len = (npts() * npts()) as usize;
    let mut jx = vec![0.0f64; len];
    let mut jy = vec![0.0f64; len];
    let mut jz = vec![0.0f64; len];
    macro_rules! jviews {
        () => {
            JViews {
                jx: FieldViewMut {
                    data: &mut jx,
                    lo: [-NG, 0, -NG],
                    nx: npts(),
                    nxy: npts(),
                    half: [true, false, false],
                },
                jy: FieldViewMut {
                    data: &mut jy,
                    lo: [-NG, 0, -NG],
                    nx: npts(),
                    nxy: npts(),
                    half: [false, true, false],
                },
                jz: FieldViewMut {
                    data: &mut jz,
                    lo: [-NG, 0, -NG],
                    nx: npts(),
                    nxy: npts(),
                    half: [false, false, true],
                },
            }
        };
    }
    // Staging-only cost of the Esirkepov dual-window evaluation (two
    // axes per particle), to see how much of the deposit kernels is
    // weight staging vs scatter.
    let mut sink = 0.0f64;
    time("esirkepov2 staging only", || {
        let inv = 1.0 / 1e-6;
        for p in 0..NP {
            let (ax, s0x, s1x) = dual::<Quadratic, f64>(x0[p] * inv, x1[p] * inv);
            let (az, s0z, s1z) = dual::<Quadratic, f64>(z0[p] * inv, z1[p] * inv);
            sink += s0x[0] + s1x[3] + s0z[1] + s1z[2] + (ax + az) as f64;
        }
    });
    assert!(sink != 0.0);

    let q = -1.602e-19;
    let dt = 1.4e-15;
    time("esirkepov2 scalar", || {
        let mut j = jviews!();
        esirkepov2::<Quadratic, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &geom, &mut j);
    });
    time("esirkepov2 blocked", || {
        let mut j = jviews!();
        esirkepov2_blocked::<Quadratic, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &geom, &mut j);
    });
    time("esirkepov2 lanes W=4", || {
        let mut j = jviews!();
        Lanes::<4>::esirkepov2::<Quadratic, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &geom, &mut j);
    });
    time("esirkepov2 lanes W=8", || {
        let mut j = jviews!();
        Lanes::<8>::esirkepov2::<Quadratic, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &geom, &mut j);
    });
    time("esirkepov2 lanes W=16", || {
        let mut j = jviews!();
        Lanes::<16>::esirkepov2::<Quadratic, f64>(
            &x0, &z0, &x1, &z1, &vy, &w, q, dt, &geom, &mut j,
        );
    });
}
