//! Lane-blocked SoA particle kernels.
//!
//! `Lanes<W>` processes particles in fixed-width blocks of `W`: per
//! block the shape weights of every particle are staged once per axis
//! and stagger variant into transposed `[.. ; W]` temporaries (the
//! paper's §V-A.1 "vectorize over p with ijk fixed" transposition),
//! and the interpolation / deposition inner loops then run over the
//! `W` lanes with the stencil offset fixed — plain chunk-of-N Rust the
//! compiler auto-vectorizes, no intrinsics.
//!
//! **Interior/boundary split.** Before taking the unchecked fast path a
//! block is tested for containment: every particle's stencil window
//! (per axis, per stagger variant actually used by the target view)
//! must lie fully inside the stored point box of *every* view it
//! touches, with an exclusive upper bound (`anchor + SUPPORT <= lo +
//! extent` — the top edge is not clamped; a window that merely touches
//! one-past-the-end is a boundary block). Interior blocks run the lane
//! loops with unchecked indexing; a block with any edge-straddling
//! lane, and the `n % W` tail, fall back to the scalar reference
//! kernels on the same sub-slice, whose checked indexing turns any
//! caller contract violation into a panic instead of UB.
//!
//! **Bitwise identity.** The fast path replicates the scalar kernels'
//! expression trees and evaluation order exactly (same products in the
//! same association, same accumulation chains, deposits scattered in
//! ascending lane = ascending particle order), so `Lanes` results are
//! bitwise identical to `gather2`/`gather3`/`esirkepov2`/`esirkepov3`/
//! `push_momentum` at any `W` — the dispatch width is a pure
//! performance knob. Property tests in `tests/lane_bitwise.rs` enforce
//! this for particle sets straddling box edges.

use crate::deposit::{esirkepov2, esirkepov3, JViews};
use crate::gather::{gather2, gather3, EmOut, EmViews};
use crate::push::{boris_one, push_momentum, vay_one, Pusher};
use crate::real::Real;
use crate::shape::{sel, Shape};
use crate::view::{FieldView, Geom};

/// Default particle-block width. 16 doubles = two ZMM registers per op:
/// wide enough to amortize the per-block staging and containment check,
/// small enough that the staged weights stay cache-resident; justified
/// empirically by the `lane_width_sweep` block in
/// `BENCH_step_loop.json`.
pub const DEFAULT_LANE_WIDTH: usize = 16;

/// Lane widths the run config accepts.
pub const LANE_WIDTHS: [usize; 3] = [4, 8, 16];

/// Widest block the deposit kernels run at. Gather keeps getting faster
/// up to W = 16 (pure vector loads), but the deposit's scatter is a
/// serial per-lane read-modify-write chain, and past 8 lanes the larger
/// staged axis tiles cost more than the extra lanes amortize (see the
/// `lane_width_sweep` / perf-probe data). Blocks wider than this are
/// re-blocked — pure re-blocking: per-particle values, fallback
/// behavior, and deposit order are width-invariant, so results stay
/// bitwise identical.
const DEPOSIT_MAX_WIDTH: usize = 8;

/// Lane-blocked kernel entry points at block width `W`.
pub struct Lanes<const W: usize>;

/// Staged dual-stagger weights of one block along one axis:
/// `w[variant][k][lane]` and anchors `i0[variant][lane]`, variant 0 =
/// nodal, 1 = half. One instance per axis a dimensionality actually
/// uses, so the 2-D gather never stages (or even zero-initializes) the
/// unused y axis.
struct GatherAxis<T, const W: usize> {
    w: [[[T; W]; 4]; 2],
    i0: [[i64; W]; 2],
    /// Per-variant min and max anchor over the block's lanes.
    lo: [i64; 2],
    hi: [i64; 2],
}

impl<T: Real, const W: usize> GatherAxis<T, W> {
    /// Evaluate both stagger variants of axis `d` for `W` particles.
    ///
    /// `xs[l] - T::from_f64(0.0)` is a bitwise identity (IEEE `x - 0.0
    /// == x`, including `-0.0`), so evaluating at `xi` and `xi - HALF`
    /// reproduces the scalar kernels' `S::eval(xi - off)` exactly for
    /// both variants.
    fn stage<S: Shape>(d: usize, xs: &[T], geom: &Geom) -> Self {
        let mut ax = GatherAxis {
            w: [[[T::ZERO; W]; 4]; 2],
            i0: [[0; W]; 2],
            lo: [i64::MAX; 2],
            hi: [i64::MIN; 2],
        };
        // Stage as whole-block array passes (cell-unit conversion, then
        // one `eval_block` per stagger variant) so each pass vectorizes
        // across the lanes instead of round-tripping per particle.
        // `xi - HALF` for the half variant reproduces the scalar
        // kernels' `S::eval(xi - off)` exactly (and `x - 0.0 == x`
        // bitwise for the nodal variant).
        let mut xn = [T::ZERO; W];
        let mut xh = [T::ZERO; W];
        for l in 0..W {
            let xi = geom.xi(d, xs[l]);
            xn[l] = xi;
            xh[l] = xi - T::HALF;
        }
        let [w_n, w_h] = &mut ax.w;
        let [i_n, i_h] = &mut ax.i0;
        S::eval_block(&xn, i_n, w_n);
        S::eval_block(&xh, i_h, w_h);
        for v in 0..2 {
            for l in 0..W {
                ax.lo[v] = ax.lo[v].min(ax.i0[v][l]);
                ax.hi[v] = ax.hi[v].max(ax.i0[v][l]);
            }
        }
        ax
    }

    /// Every lane's window along this axis inside `[f_lo, f_lo + ext)`,
    /// using stagger variant `v`?
    fn contained(&self, f_lo: i64, ext: i64, v: usize, support: i64) -> bool {
        self.lo[v] >= f_lo && self.hi[v] + support <= f_lo + ext
    }
}

/// Containment of a block against one 2-D (x–z) view.
#[inline(always)]
fn contained2<T: Real, const W: usize>(
    f: &FieldView<'_, T>,
    ax: &GatherAxis<T, W>,
    az: &GatherAxis<T, W>,
    support: i64,
) -> bool {
    let ext = f.extent();
    ax.contained(f.lo[0], ext[0], f.half[0] as usize, support)
        && az.contained(f.lo[2], ext[2], f.half[2] as usize, support)
}

/// Containment of a block against one 3-D view.
#[inline(always)]
fn contained3<T: Real, const W: usize>(
    f: &FieldView<'_, T>,
    ax: &GatherAxis<T, W>,
    ay: &GatherAxis<T, W>,
    az: &GatherAxis<T, W>,
    support: i64,
) -> bool {
    let ext = f.extent();
    ax.contained(f.lo[0], ext[0], f.half[0] as usize, support)
        && ay.contained(f.lo[1], ext[1], f.half[1] as usize, support)
        && az.contained(f.lo[2], ext[2], f.half[2] as usize, support)
}

/// Lane interpolation of one 3-D component; caller has verified
/// containment. Bitwise-identical to `interp_one` in `gather.rs`.
#[inline(always)]
fn lane_interp3<S: Shape, T: Real, const W: usize>(
    f: &FieldView<'_, T>,
    sx: &GatherAxis<T, W>,
    sy: &GatherAxis<T, W>,
    sz: &GatherAxis<T, W>,
    out: &mut [T],
) {
    let hx = f.half[0] as usize;
    let hy = f.half[1] as usize;
    let hz = f.half[2] as usize;
    let wx = &sx.w[hx];
    let wy = &sy.w[hy];
    let wz = &sz.w[hz];
    let mut base = [0usize; W];
    for l in 0..W {
        base[l] = f.idx(sx.i0[hx][l], sy.i0[hy][l], sz.i0[hz][l]);
    }
    let mut acc = [T::ZERO; W];
    for c in 0..S::SUPPORT {
        for b in 0..S::SUPPORT {
            let mut part = [T::ZERO; W];
            for l in 0..W {
                part[l] = wz[c][l] * wy[b][l];
            }
            let off = (c as i64 * f.nxy + b as i64 * f.nx) as usize;
            for a in 0..S::SUPPORT {
                let wxa = &wx[a];
                for l in 0..W {
                    // SAFETY: block containment checked by the caller.
                    let v = unsafe { *f.data.get_unchecked(base[l] + off + a) };
                    acc[l] = (part[l] * wxa[l]).mul_add(v, acc[l]);
                }
            }
        }
    }
    out[..W].copy_from_slice(&acc);
}

/// Lane interpolation of two 2-D (x–z) components that share both
/// stagger variants (Yee pairs: Ex/Bz and Ez/Bx project to the same
/// (x, z) halves). The weight product `wz·wx` is formed once and used
/// for both accumulations — the identical expression each component
/// computes alone, so the results stay bitwise-identical to
/// `interp_one_2d` per component while the staging products are paid
/// once per pair.
#[inline(always)]
fn lane_interp2_pair<S: Shape, T: Real, const W: usize>(
    f1: &FieldView<'_, T>,
    f2: &FieldView<'_, T>,
    sx: &GatherAxis<T, W>,
    sz: &GatherAxis<T, W>,
    out1: &mut [T],
    out2: &mut [T],
) {
    debug_assert!(f1.half[0] == f2.half[0] && f1.half[2] == f2.half[2]);
    let hx = f1.half[0] as usize;
    let hz = f1.half[2] as usize;
    let wx = &sx.w[hx];
    let wz = &sz.w[hz];
    let mut base1 = [0usize; W];
    let mut base2 = [0usize; W];
    for l in 0..W {
        base1[l] = f1.idx(sx.i0[hx][l], f1.lo[1], sz.i0[hz][l]);
        base2[l] = f2.idx(sx.i0[hx][l], f2.lo[1], sz.i0[hz][l]);
    }
    let mut acc1 = [T::ZERO; W];
    let mut acc2 = [T::ZERO; W];
    for c in 0..S::SUPPORT {
        let off1 = (c as i64 * f1.nxy) as usize;
        let off2 = (c as i64 * f2.nxy) as usize;
        for a in 0..S::SUPPORT {
            let wxa = &wx[a];
            let wzc = &wz[c];
            for l in 0..W {
                let wp = wzc[l] * wxa[l];
                // SAFETY: block containment checked by the caller for
                // both views.
                let v1 = unsafe { *f1.data.get_unchecked(base1[l] + off1 + a) };
                let v2 = unsafe { *f2.data.get_unchecked(base2[l] + off2 + a) };
                acc1[l] = wp.mul_add(v1, acc1[l]);
                acc2[l] = wp.mul_add(v2, acc2[l]);
            }
        }
    }
    out1[..W].copy_from_slice(&acc1);
    out2[..W].copy_from_slice(&acc2);
}

/// Lane interpolation of one 2-D (x–z) component; bitwise-identical to
/// `interp_one_2d` in `gather.rs`.
#[inline(always)]
fn lane_interp2<S: Shape, T: Real, const W: usize>(
    f: &FieldView<'_, T>,
    sx: &GatherAxis<T, W>,
    sz: &GatherAxis<T, W>,
    out: &mut [T],
) {
    let hx = f.half[0] as usize;
    let hz = f.half[2] as usize;
    let wx = &sx.w[hx];
    let wz = &sz.w[hz];
    let j = f.lo[1];
    let mut base = [0usize; W];
    for l in 0..W {
        base[l] = f.idx(sx.i0[hx][l], j, sz.i0[hz][l]);
    }
    let mut acc = [T::ZERO; W];
    for c in 0..S::SUPPORT {
        let off = (c as i64 * f.nxy) as usize;
        for a in 0..S::SUPPORT {
            let wxa = &wx[a];
            let wzc = &wz[c];
            for l in 0..W {
                // SAFETY: block containment checked by the caller.
                let v = unsafe { *f.data.get_unchecked(base[l] + off + a) };
                acc[l] = (wzc[l] * wxa[l]).mul_add(v, acc[l]);
            }
        }
    }
    out[..W].copy_from_slice(&acc);
}

/// Staged dual (old/new) Esirkepov weights of one block along one axis,
/// stored k-major (`s0[k][lane]`) so staging runs as contiguous array
/// passes across the lanes; the per-lane scatter reads its window with
/// constant-stride scalar loads.
struct DepAxis<T, const W: usize> {
    a: [i64; W],
    s0: [[T; W]; 5],
    ds: [[T; W]; 5],
    /// Ascending prefix sums of `ds` (the Esirkepov sweep integral) —
    /// per lane the same serial addition chain as the scalar kernels'
    /// prefix pass, accumulated vector-wise across the lanes.
    ps: [[T; W]; 5],
    lo: i64,
    hi: i64,
}

impl<T: Real, const W: usize> DepAxis<T, W> {
    /// Whole-block staging: the evaluation `shape::dual` performs per
    /// particle, restructured into array passes across the lanes (eval
    /// both endpoints, branchless window placement, difference, prefix)
    /// — every pass auto-vectorizes, and each lane's values stay
    /// bitwise identical to `dual::<S, T>` plus the scalar prefix pass.
    fn stage<S: Shape>(d: usize, p0: &[T], p1: &[T], geom: &Geom) -> Self {
        let mut ax = Self {
            a: [0; W],
            s0: [[T::ZERO; W]; 5],
            ds: [[T::ZERO; W]; 5],
            ps: [[T::ZERO; W]; 5],
            lo: i64::MAX,
            hi: i64::MIN,
        };
        let mut xo = [T::ZERO; W];
        let mut xn = [T::ZERO; W];
        for l in 0..W {
            xo[l] = geom.xi(d, p0[l]);
            xn[l] = geom.xi(d, p1[l]);
        }
        let mut io = [0i64; W];
        let mut in_ = [0i64; W];
        let mut wo = [[T::ZERO; W]; 4];
        let mut wn = [[T::ZERO; W]; 4];
        S::eval_block(&xo, &mut io, &mut wo);
        S::eval_block(&xn, &mut in_, &mut wn);
        let mut o0 = [false; W];
        let mut n0 = [false; W];
        for l in 0..W {
            debug_assert!(
                (io[l] - in_[l]).abs() <= 1,
                "particle moved more than one cell per step (CFL violation)"
            );
            let a = io[l].min(in_[l]);
            ax.a[l] = a;
            o0[l] = io[l] == a;
            n0[l] = in_[l] == a;
        }
        for l in 0..W {
            ax.lo = ax.lo.min(ax.a[l]);
            ax.hi = ax.hi.max(ax.a[l]);
        }
        // Branchless dual-window placement (see `shape::dual`): each
        // window sits at offset 0 or 1 from the anchor, so every padded
        // slot is a select between a weight and its left neighbour,
        // with `eval`'s zero tail as padding. `s1` is only needed
        // transiently to form `ds`.
        let mut s1 = [[T::ZERO; W]; 5];
        for l in 0..W {
            ax.s0[0][l] = sel(o0[l], wo[0][l], T::ZERO);
            s1[0][l] = sel(n0[l], wn[0][l], T::ZERO);
        }
        for k in 1..4 {
            for l in 0..W {
                ax.s0[k][l] = sel(o0[l], wo[k][l], wo[k - 1][l]);
                s1[k][l] = sel(n0[l], wn[k][l], wn[k - 1][l]);
            }
        }
        for l in 0..W {
            ax.s0[4][l] = sel(o0[l], T::ZERO, wo[3][l]);
            s1[4][l] = sel(n0[l], T::ZERO, wn[3][l]);
        }
        let len = S::SUPPORT + 1;
        for k in 0..len {
            for l in 0..W {
                ax.ds[k][l] = s1[k][l] - ax.s0[k][l];
            }
        }
        // `ZERO + ds[0]` mirrors the scalar pass's `run = run + ds[k]`
        // chain exactly from its zero seed.
        for l in 0..W {
            ax.ps[0][l] = T::ZERO + ax.ds[0][l];
        }
        for k in 1..len {
            for l in 0..W {
                ax.ps[k][l] = ax.ps[k - 1][l] + ax.ds[k][l];
            }
        }
        ax
    }

    /// Window `[lo, hi + len)` inside the view along axis `d`?
    fn contained(&self, lo_d: i64, ext_d: i64, len: i64) -> bool {
        self.lo >= lo_d && self.hi + len <= lo_d + ext_d
    }
}

impl<const W: usize> Lanes<W> {
    /// Lane-blocked 3-D gather; bitwise-identical to [`gather3`].
    pub fn gather3<S: Shape, T: Real>(
        x: &[T],
        y: &[T],
        z: &[T],
        geom: &Geom,
        f: &EmViews<'_, T>,
        out: &mut EmOut<'_, T>,
    ) {
        let n = x.len();
        assert!(y.len() == n && z.len() == n && out.ex.len() >= n);
        let mut s = 0;
        while s + W <= n {
            let e = s + W;
            let sx = GatherAxis::<T, W>::stage::<S>(0, &x[s..e], geom);
            let sy = GatherAxis::<T, W>::stage::<S>(1, &y[s..e], geom);
            let sz = GatherAxis::<T, W>::stage::<S>(2, &z[s..e], geom);
            let sup = S::SUPPORT as i64;
            let interior = contained3(&f.ex, &sx, &sy, &sz, sup)
                && contained3(&f.ey, &sx, &sy, &sz, sup)
                && contained3(&f.ez, &sx, &sy, &sz, sup)
                && contained3(&f.bx, &sx, &sy, &sz, sup)
                && contained3(&f.by, &sx, &sy, &sz, sup)
                && contained3(&f.bz, &sx, &sy, &sz, sup);
            if interior {
                lane_interp3::<S, T, W>(&f.ex, &sx, &sy, &sz, &mut out.ex[s..e]);
                lane_interp3::<S, T, W>(&f.ey, &sx, &sy, &sz, &mut out.ey[s..e]);
                lane_interp3::<S, T, W>(&f.ez, &sx, &sy, &sz, &mut out.ez[s..e]);
                lane_interp3::<S, T, W>(&f.bx, &sx, &sy, &sz, &mut out.bx[s..e]);
                lane_interp3::<S, T, W>(&f.by, &sx, &sy, &sz, &mut out.by[s..e]);
                lane_interp3::<S, T, W>(&f.bz, &sx, &sy, &sz, &mut out.bz[s..e]);
            } else {
                gather3::<S, T>(
                    &x[s..e],
                    &y[s..e],
                    &z[s..e],
                    geom,
                    f,
                    &mut sub_out(out, s, e),
                );
            }
            s = e;
        }
        if s < n {
            gather3::<S, T>(&x[s..], &y[s..], &z[s..], geom, f, &mut sub_out(out, s, n));
        }
    }

    /// Lane-blocked 2-D (x–z) gather; bitwise-identical to [`gather2`].
    pub fn gather2<S: Shape, T: Real>(
        x: &[T],
        z: &[T],
        geom: &Geom,
        f: &EmViews<'_, T>,
        out: &mut EmOut<'_, T>,
    ) {
        let n = x.len();
        assert!(z.len() == n && out.ex.len() >= n);
        let mut s = 0;
        while s + W <= n {
            let e = s + W;
            let sx = GatherAxis::<T, W>::stage::<S>(0, &x[s..e], geom);
            let sz = GatherAxis::<T, W>::stage::<S>(2, &z[s..e], geom);
            let sup = S::SUPPORT as i64;
            let interior = contained2(&f.ex, &sx, &sz, sup)
                && contained2(&f.ey, &sx, &sz, sup)
                && contained2(&f.ez, &sx, &sz, sup)
                && contained2(&f.bx, &sx, &sz, sup)
                && contained2(&f.by, &sx, &sz, sup)
                && contained2(&f.bz, &sx, &sz, sup);
            if interior {
                // On the Yee lattice Ex/Bz and Ez/Bx project to the same
                // (x, z) stagger pair — interpolate those as fused pairs
                // sharing the weight products (bitwise-identical values).
                let yee_pairs = f.ex.half[0] == f.bz.half[0]
                    && f.ex.half[2] == f.bz.half[2]
                    && f.ez.half[0] == f.bx.half[0]
                    && f.ez.half[2] == f.bx.half[2];
                if yee_pairs {
                    let (ex_o, bz_o) = (&mut out.ex[s..e], &mut out.bz[s..e]);
                    lane_interp2_pair::<S, T, W>(&f.ex, &f.bz, &sx, &sz, ex_o, bz_o);
                    let (ez_o, bx_o) = (&mut out.ez[s..e], &mut out.bx[s..e]);
                    lane_interp2_pair::<S, T, W>(&f.ez, &f.bx, &sx, &sz, ez_o, bx_o);
                    lane_interp2::<S, T, W>(&f.ey, &sx, &sz, &mut out.ey[s..e]);
                    lane_interp2::<S, T, W>(&f.by, &sx, &sz, &mut out.by[s..e]);
                } else {
                    lane_interp2::<S, T, W>(&f.ex, &sx, &sz, &mut out.ex[s..e]);
                    lane_interp2::<S, T, W>(&f.ey, &sx, &sz, &mut out.ey[s..e]);
                    lane_interp2::<S, T, W>(&f.ez, &sx, &sz, &mut out.ez[s..e]);
                    lane_interp2::<S, T, W>(&f.bx, &sx, &sz, &mut out.bx[s..e]);
                    lane_interp2::<S, T, W>(&f.by, &sx, &sz, &mut out.by[s..e]);
                    lane_interp2::<S, T, W>(&f.bz, &sx, &sz, &mut out.bz[s..e]);
                }
            } else {
                gather2::<S, T>(&x[s..e], &z[s..e], geom, f, &mut sub_out(out, s, e));
            }
            s = e;
        }
        if s < n {
            gather2::<S, T>(&x[s..], &z[s..], geom, f, &mut sub_out(out, s, n));
        }
    }

    /// Lane-blocked 3-D Esirkepov deposition; bitwise-identical to
    /// [`esirkepov3`] (deposits land in the same order).
    #[allow(clippy::too_many_arguments)]
    pub fn esirkepov3<S: Shape, T: Real>(
        x0: &[T],
        y0: &[T],
        z0: &[T],
        x1: &[T],
        y1: &[T],
        z1: &[T],
        w: &[T],
        q: T,
        dt: T,
        geom: &Geom,
        j: &mut JViews<'_, T>,
    ) {
        if W > DEPOSIT_MAX_WIDTH {
            return Lanes::<DEPOSIT_MAX_WIDTH>::esirkepov3::<S, T>(
                x0, y0, z0, x1, y1, z1, w, q, dt, geom, j,
            );
        }
        let n = x0.len();
        let [dx, dy, dz] = geom.dx;
        let cx = q / (dt * T::from_f64(dy * dz));
        let cy = q / (dt * T::from_f64(dx * dz));
        let cz = q / (dt * T::from_f64(dx * dy));
        let half = T::HALF;
        let third = T::from_f64(1.0 / 3.0);
        let len = S::SUPPORT + 1;
        let mut s = 0;
        while s + W <= n {
            let e = s + W;
            let sx = DepAxis::<T, W>::stage::<S>(0, &x0[s..e], &x1[s..e], geom);
            let sy = DepAxis::<T, W>::stage::<S>(1, &y0[s..e], &y1[s..e], geom);
            let sz = DepAxis::<T, W>::stage::<S>(2, &z0[s..e], &z1[s..e], geom);
            let leni = len as i64;
            let interior = [&j.jx, &j.jy, &j.jz].into_iter().all(|v| {
                let ext = v.extent();
                sx.contained(v.lo[0], ext[0], leni)
                    && sy.contained(v.lo[1], ext[1], leni)
                    && sz.contained(v.lo[2], ext[2], leni)
            });
            if interior {
                // Fused per-lane scatter: each lane replays the scalar
                // kernel's exact expression tree against the staged
                // weights (contiguous per lane), with the block-level
                // containment check licensing unchecked row addressing.
                // Lanes run in ascending order so cross-particle
                // accumulation matches the scalar kernel bitwise.
                let (xnxy, xnx) = (j.jx.nxy as usize, j.jx.nx as usize);
                let (ynxy, ynx) = (j.jy.nxy as usize, j.jy.nx as usize);
                let (znxy, znx) = (j.jz.nxy as usize, j.jz.nx as usize);
                for l in 0..W {
                    let nwx = -(cx * w[s + l]);
                    let nwy = -(cy * w[s + l]);
                    let nwz = -(cz * w[s + l]);
                    let bx = j.jx.idx(sx.a[l], sy.a[l], sz.a[l]);
                    for c in 0..len {
                        let pz = half.mul_add(sz.ds[c][l], sz.s0[c][l]);
                        let qz = third.mul_add(sz.ds[c][l], half * sz.s0[c][l]);
                        for b in 0..len {
                            let wt = sy.ds[b][l].mul_add(qz, sy.s0[b][l] * pz);
                            let nw = nwx * wt;
                            let row = bx + c * xnxy + b * xnx;
                            for a in 0..len - 1 {
                                // SAFETY: containment checked above.
                                unsafe {
                                    let slot = j.jx.data.get_unchecked_mut(row + a);
                                    *slot = nw.mul_add(sx.ps[a][l], *slot);
                                }
                            }
                        }
                    }
                    // Jy / Jz run a-innermost with hoisted per-a weights
                    // (see the scalar kernel — one contribution per slot,
                    // so the reorder is value- and order-preserving).
                    let by = j.jy.idx(sx.a[l], sy.a[l], sz.a[l]);
                    for c in 0..len {
                        let pz = half.mul_add(sz.ds[c][l], sz.s0[c][l]);
                        let qz = third.mul_add(sz.ds[c][l], half * sz.s0[c][l]);
                        let mut nwy_a = [T::ZERO; 5];
                        for a in 0..len {
                            nwy_a[a] = nwy * sx.ds[a][l].mul_add(qz, sx.s0[a][l] * pz);
                        }
                        for b in 0..len - 1 {
                            let row = by + c * ynxy + b * ynx;
                            for a in 0..len {
                                // SAFETY: containment checked above.
                                unsafe {
                                    let slot = j.jy.data.get_unchecked_mut(row + a);
                                    *slot = nwy_a[a].mul_add(sy.ps[b][l], *slot);
                                }
                            }
                        }
                    }
                    let bz = j.jz.idx(sx.a[l], sy.a[l], sz.a[l]);
                    for b in 0..len {
                        let py = half.mul_add(sy.ds[b][l], sy.s0[b][l]);
                        let qy = third.mul_add(sy.ds[b][l], half * sy.s0[b][l]);
                        let mut nwz_a = [T::ZERO; 5];
                        for a in 0..len {
                            nwz_a[a] = nwz * sx.ds[a][l].mul_add(qy, sx.s0[a][l] * py);
                        }
                        for c in 0..len - 1 {
                            let row = bz + c * znxy + b * znx;
                            for a in 0..len {
                                // SAFETY: containment checked above.
                                unsafe {
                                    let slot = j.jz.data.get_unchecked_mut(row + a);
                                    *slot = nwz_a[a].mul_add(sz.ps[c][l], *slot);
                                }
                            }
                        }
                    }
                }
            } else {
                esirkepov3::<S, T>(
                    &x0[s..e],
                    &y0[s..e],
                    &z0[s..e],
                    &x1[s..e],
                    &y1[s..e],
                    &z1[s..e],
                    &w[s..e],
                    q,
                    dt,
                    geom,
                    j,
                );
            }
            s = e;
        }
        if s < n {
            esirkepov3::<S, T>(
                &x0[s..],
                &y0[s..],
                &z0[s..],
                &x1[s..],
                &y1[s..],
                &z1[s..],
                &w[s..],
                q,
                dt,
                geom,
                j,
            );
        }
    }

    /// Lane-blocked 2-D (x–z) Esirkepov deposition; bitwise-identical
    /// to [`esirkepov2`].
    #[allow(clippy::too_many_arguments)]
    pub fn esirkepov2<S: Shape, T: Real>(
        x0: &[T],
        z0: &[T],
        x1: &[T],
        z1: &[T],
        vy: &[T],
        w: &[T],
        q: T,
        dt: T,
        geom: &Geom,
        j: &mut JViews<'_, T>,
    ) {
        if W > DEPOSIT_MAX_WIDTH {
            return Lanes::<DEPOSIT_MAX_WIDTH>::esirkepov2::<S, T>(
                x0, z0, x1, z1, vy, w, q, dt, geom, j,
            );
        }
        let n = x0.len();
        let [dx, dy, dz] = geom.dx;
        let cx = q / (dt * T::from_f64(dy * dz));
        let cz = q / (dt * T::from_f64(dx * dy));
        let cy = q / T::from_f64(dx * dy * dz);
        let half = T::HALF;
        let third = T::from_f64(1.0 / 3.0);
        let len = S::SUPPORT + 1;
        let mut s = 0;
        while s + W <= n {
            let e = s + W;
            let sx = DepAxis::<T, W>::stage::<S>(0, &x0[s..e], &x1[s..e], geom);
            let sz = DepAxis::<T, W>::stage::<S>(2, &z0[s..e], &z1[s..e], geom);
            let leni = len as i64;
            let interior = [&j.jx, &j.jy, &j.jz].into_iter().all(|v| {
                let ext = v.extent();
                sx.contained(v.lo[0], ext[0], leni) && sz.contained(v.lo[2], ext[2], leni)
            });
            if interior {
                // Fused per-lane scatter (see `esirkepov3`): the scalar
                // expression tree replayed on contiguous staged weights,
                // unchecked addressing licensed by the containment check,
                // ascending lane order for bitwise-identical accumulation.
                let jx_plane = j.jx.lo[1];
                let jy_plane = j.jy.lo[1];
                let jz_plane = j.jz.lo[1];
                let xnxy = j.jx.nxy as usize;
                let ynxy = j.jy.nxy as usize;
                let znxy = j.jz.nxy as usize;
                for l in 0..W {
                    let nwxc = -(cx * w[s + l]);
                    let wyc = cy * w[s + l] * vy[s + l];
                    let nwzc = -(cz * w[s + l]);
                    let bx = j.jx.idx(sx.a[l], jx_plane, sz.a[l]);
                    for c in 0..len {
                        let wt = half.mul_add(sz.ds[c][l], sz.s0[c][l]);
                        let nw = nwxc * wt;
                        let row = bx + c * xnxy;
                        for a in 0..len - 1 {
                            // SAFETY: containment checked above.
                            unsafe {
                                let slot = j.jx.data.get_unchecked_mut(row + a);
                                *slot = nw.mul_add(sx.ps[a][l], *slot);
                            }
                        }
                    }
                    let bz = j.jz.idx(sx.a[l], jz_plane, sz.a[l]);
                    // c-outer / a-inner (contiguous stores); same
                    // per-slot values and order as the scalar kernel.
                    let mut nwz = [T::ZERO; 5];
                    for a in 0..len {
                        nwz[a] = nwzc * half.mul_add(sx.ds[a][l], sx.s0[a][l]);
                    }
                    for c in 0..len - 1 {
                        let psz_c = sz.ps[c][l];
                        let row = bz + c * znxy;
                        for a in 0..len {
                            // SAFETY: containment checked above.
                            unsafe {
                                let slot = j.jz.data.get_unchecked_mut(row + a);
                                *slot = nwz[a].mul_add(psz_c, *slot);
                            }
                        }
                    }
                    let by = j.jy.idx(sx.a[l], jy_plane, sz.a[l]);
                    for c in 0..len {
                        let pz = half.mul_add(sz.ds[c][l], sz.s0[c][l]);
                        let qz = third.mul_add(sz.ds[c][l], half * sz.s0[c][l]);
                        let row = by + c * ynxy;
                        for a in 0..len {
                            let wt = sx.ds[a][l].mul_add(qz, sx.s0[a][l] * pz);
                            // SAFETY: containment checked above.
                            unsafe {
                                let slot = j.jy.data.get_unchecked_mut(row + a);
                                *slot = wyc.mul_add(wt, *slot);
                            }
                        }
                    }
                }
            } else {
                esirkepov2::<S, T>(
                    &x0[s..e],
                    &z0[s..e],
                    &x1[s..e],
                    &z1[s..e],
                    &vy[s..e],
                    &w[s..e],
                    q,
                    dt,
                    geom,
                    j,
                );
            }
            s = e;
        }
        if s < n {
            esirkepov2::<S, T>(
                &x0[s..],
                &z0[s..],
                &x1[s..],
                &z1[s..],
                &vy[s..],
                &w[s..],
                q,
                dt,
                geom,
                j,
            );
        }
    }

    /// Block-chunked momentum push. The per-particle update is already
    /// lane-independent; chunking keeps the E/B operands of a block hot
    /// and gives LLVM a fixed trip count to unroll/vectorize.
    #[allow(clippy::too_many_arguments)]
    pub fn push_momentum<T: Real>(
        pusher: Pusher,
        ux: &mut [T],
        uy: &mut [T],
        uz: &mut [T],
        ex: &[T],
        ey: &[T],
        ez: &[T],
        bx: &[T],
        by: &[T],
        bz: &[T],
        qmdt2: T,
    ) {
        let n = ux.len();
        let mut s = 0;
        // The pusher dispatch is hoisted out of the chunk loop so each
        // arm is a branch-free blocked loop the compiler can unroll.
        match pusher {
            Pusher::Boris => {
                while s + W <= n {
                    for l in s..s + W {
                        boris_one(
                            &mut ux[l], &mut uy[l], &mut uz[l], ex[l], ey[l], ez[l], bx[l], by[l],
                            bz[l], qmdt2,
                        );
                    }
                    s += W;
                }
            }
            Pusher::Vay => {
                while s + W <= n {
                    for l in s..s + W {
                        vay_one(
                            &mut ux[l], &mut uy[l], &mut uz[l], ex[l], ey[l], ez[l], bx[l], by[l],
                            bz[l], qmdt2,
                        );
                    }
                    s += W;
                }
            }
        }
        if s < n {
            push_momentum(
                pusher,
                &mut ux[s..],
                &mut uy[s..],
                &mut uz[s..],
                &ex[s..],
                &ey[s..],
                &ez[s..],
                &bx[s..],
                &by[s..],
                &bz[s..],
                qmdt2,
            );
        }
    }
}

/// Reborrow the `[s, e)` window of every output component.
fn sub_out<'a, T>(out: &'a mut EmOut<'_, T>, s: usize, e: usize) -> EmOut<'a, T> {
    EmOut {
        ex: &mut out.ex[s..e],
        ey: &mut out.ey[s..e],
        ez: &mut out.ez[s..e],
        bx: &mut out.bx[s..e],
        by: &mut out.by[s..e],
        bz: &mut out.bz[s..e],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push::push_momentum;
    use crate::shape::{Cubic, Linear, Quadratic};
    use crate::view::FieldViewMut;

    /// Deterministic LCG so tests need no external RNG.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    const NX: i64 = 20;
    const NY: i64 = 18;
    const NZ: i64 = 19;
    const LO: [i64; 3] = [-2, -1, -3];

    fn grid(seed: u64) -> Vec<f64> {
        let mut r = Rng(seed);
        (0..(NX * NY * NZ) as usize)
            .map(|_| r.next_f64() * 2.0 - 1.0)
            .collect()
    }

    fn view<'a>(data: &'a [f64], half: [bool; 3]) -> FieldView<'a, f64> {
        FieldView {
            data,
            lo: LO,
            nx: NX,
            nxy: NX * NY,
            half,
        }
    }

    fn em_views(store: &[Vec<f64>; 6]) -> EmViews<'_, f64> {
        EmViews {
            ex: view(&store[0], [true, false, false]),
            ey: view(&store[1], [false, true, false]),
            ez: view(&store[2], [false, false, true]),
            bx: view(&store[3], [false, true, true]),
            by: view(&store[4], [true, false, true]),
            bz: view(&store[5], [true, true, false]),
        }
    }

    /// Positions whose stencil windows (any variant, window `sup`) are
    /// comfortably interior: a `sup + 3`-cell margin absorbs the anchor
    /// spread of every shape, stagger variant, and sub-cell move.
    /// Edge-touching windows are covered by `tests/lane_bitwise.rs`.
    fn positions(n: usize, seed: u64, sup: i64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut r = Rng(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        let m = (sup + 3) as f64;
        let span = |ext: i64, u: f64| m + u * (ext as f64 - 2.0 * m);
        for _ in 0..n {
            xs.push(LO[0] as f64 + span(NX, r.next_f64()));
            ys.push(LO[1] as f64 + span(NY, r.next_f64()));
            zs.push(LO[2] as f64 + span(NZ, r.next_f64()));
        }
        (xs, ys, zs)
    }

    fn geom() -> Geom {
        Geom {
            xmin: [0.0; 3],
            dx: [1.0; 3],
        }
    }

    fn bitwise_gather3<S: Shape, const W: usize>(n: usize) {
        let mut store: [Vec<f64>; 6] = Default::default();
        for (i, v) in store.iter_mut().enumerate() {
            *v = grid(100 + i as u64);
        }
        let f = em_views(&store);
        let g = geom();
        let (mut x, mut y, mut z) = positions(n, 7, S::SUPPORT as i64);
        // Shift into physical coordinates (geom is unit cells at 0).
        for p in 0..n {
            x[p] *= g.dx[0];
            y[p] *= g.dx[1];
            z[p] *= g.dx[2];
        }
        let mut a = vec![vec![0.0f64; n]; 6];
        let mut b = vec![vec![0.0f64; n]; 6];
        {
            let [a0, a1, a2, a3, a4, a5] = &mut a[..] else {
                unreachable!()
            };
            let mut out = EmOut {
                ex: a0,
                ey: a1,
                ez: a2,
                bx: a3,
                by: a4,
                bz: a5,
            };
            gather3::<S, f64>(&x, &y, &z, &g, &f, &mut out);
        }
        {
            let [b0, b1, b2, b3, b4, b5] = &mut b[..] else {
                unreachable!()
            };
            let mut out = EmOut {
                ex: b0,
                ey: b1,
                ez: b2,
                bx: b3,
                by: b4,
                bz: b5,
            };
            Lanes::<W>::gather3::<S, f64>(&x, &y, &z, &g, &f, &mut out);
        }
        for c in 0..6 {
            for p in 0..n {
                assert_eq!(a[c][p].to_bits(), b[c][p].to_bits(), "comp {c} p {p}");
            }
        }
    }

    #[test]
    fn gather3_bitwise_all_orders_and_widths() {
        bitwise_gather3::<Linear, 4>(37);
        bitwise_gather3::<Quadratic, 8>(41);
        bitwise_gather3::<Cubic, 16>(33);
        bitwise_gather3::<Quadratic, 8>(5); // tail-only
    }

    fn bitwise_gather2<S: Shape, const W: usize>(n: usize) {
        let mut store: [Vec<f64>; 6] = Default::default();
        for (i, v) in store.iter_mut().enumerate() {
            *v = grid(300 + i as u64);
        }
        let f = em_views(&store);
        let g = geom();
        let (x, _, z) = positions(n, 11, S::SUPPORT as i64);
        let mut a = vec![vec![0.0f64; n]; 6];
        let mut b = vec![vec![0.0f64; n]; 6];
        {
            let [a0, a1, a2, a3, a4, a5] = &mut a[..] else {
                unreachable!()
            };
            let mut out = EmOut {
                ex: a0,
                ey: a1,
                ez: a2,
                bx: a3,
                by: a4,
                bz: a5,
            };
            gather2::<S, f64>(&x, &z, &g, &f, &mut out);
        }
        {
            let [b0, b1, b2, b3, b4, b5] = &mut b[..] else {
                unreachable!()
            };
            let mut out = EmOut {
                ex: b0,
                ey: b1,
                ez: b2,
                bx: b3,
                by: b4,
                bz: b5,
            };
            Lanes::<W>::gather2::<S, f64>(&x, &z, &g, &f, &mut out);
        }
        for c in 0..6 {
            for p in 0..n {
                assert_eq!(a[c][p].to_bits(), b[c][p].to_bits(), "comp {c} p {p}");
            }
        }
    }

    #[test]
    fn gather2_bitwise_all_orders_and_widths() {
        bitwise_gather2::<Linear, 4>(29);
        bitwise_gather2::<Quadratic, 8>(53);
        bitwise_gather2::<Cubic, 16>(35);
    }

    fn jviews(store: &mut [Vec<f64>; 3]) -> JViews<'_, f64> {
        let [jx, jy, jz] = store;
        JViews {
            jx: FieldViewMut {
                data: jx,
                lo: LO,
                nx: NX,
                nxy: NX * NY,
                half: [true, false, false],
            },
            jy: FieldViewMut {
                data: jy,
                lo: LO,
                nx: NX,
                nxy: NX * NY,
                half: [false, true, false],
            },
            jz: FieldViewMut {
                data: jz,
                lo: LO,
                nx: NX,
                nxy: NX * NY,
                half: [false, false, true],
            },
        }
    }

    fn bitwise_deposit3<S: Shape, const W: usize>(n: usize) {
        let g = geom();
        let sup = S::SUPPORT as i64 + 1;
        let (x0, y0, z0) = positions(n, 17, sup);
        let mut r = Rng(23);
        let (mut x1, mut y1, mut z1) = (x0.clone(), y0.clone(), z0.clone());
        let mut w = vec![0.0; n];
        for p in 0..n {
            // Sub-CFL displacement keeps |i0_old - i0_new| <= 1.
            x1[p] += 0.8 * (r.next_f64() - 0.5);
            y1[p] += 0.8 * (r.next_f64() - 0.5);
            z1[p] += 0.8 * (r.next_f64() - 0.5);
            w[p] = 1.0 + r.next_f64();
        }
        let mut sa: [Vec<f64>; 3] = Default::default();
        let mut sb: [Vec<f64>; 3] = Default::default();
        for v in sa.iter_mut().chain(sb.iter_mut()) {
            *v = vec![0.0; (NX * NY * NZ) as usize];
        }
        let q = 1.6e-19;
        let dt = 1e-9;
        {
            let mut j = jviews(&mut sa);
            esirkepov3::<S, f64>(&x0, &y0, &z0, &x1, &y1, &z1, &w, q, dt, &g, &mut j);
        }
        {
            let mut j = jviews(&mut sb);
            Lanes::<W>::esirkepov3::<S, f64>(&x0, &y0, &z0, &x1, &y1, &z1, &w, q, dt, &g, &mut j);
        }
        for c in 0..3 {
            for i in 0..sa[c].len() {
                assert_eq!(sa[c][i].to_bits(), sb[c][i].to_bits(), "comp {c} cell {i}");
            }
        }
    }

    #[test]
    fn esirkepov3_bitwise_all_orders_and_widths() {
        bitwise_deposit3::<Linear, 4>(37);
        bitwise_deposit3::<Quadratic, 8>(41);
        bitwise_deposit3::<Cubic, 16>(33);
    }

    fn bitwise_deposit2<S: Shape, const W: usize>(n: usize) {
        let g = geom();
        let sup = S::SUPPORT as i64 + 1;
        let (x0, _, z0) = positions(n, 47, sup);
        let mut r = Rng(51);
        let (mut x1, mut z1) = (x0.clone(), z0.clone());
        let mut w = vec![0.0; n];
        let mut vy = vec![0.0; n];
        for p in 0..n {
            x1[p] += 0.8 * (r.next_f64() - 0.5);
            z1[p] += 0.8 * (r.next_f64() - 0.5);
            w[p] = 1.0 + r.next_f64();
            vy[p] = 1e6 * (r.next_f64() - 0.5);
        }
        let mut sa: [Vec<f64>; 3] = Default::default();
        let mut sb: [Vec<f64>; 3] = Default::default();
        for v in sa.iter_mut().chain(sb.iter_mut()) {
            *v = vec![0.0; (NX * NY * NZ) as usize];
        }
        let q = 1.6e-19;
        let dt = 1e-9;
        {
            let mut j = jviews(&mut sa);
            esirkepov2::<S, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &g, &mut j);
        }
        {
            let mut j = jviews(&mut sb);
            Lanes::<W>::esirkepov2::<S, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &g, &mut j);
        }
        for c in 0..3 {
            for i in 0..sa[c].len() {
                assert_eq!(sa[c][i].to_bits(), sb[c][i].to_bits(), "comp {c} cell {i}");
            }
        }
    }

    #[test]
    fn esirkepov2_bitwise_all_orders_and_widths() {
        bitwise_deposit2::<Linear, 4>(37);
        bitwise_deposit2::<Quadratic, 8>(41);
        bitwise_deposit2::<Cubic, 16>(33);
    }

    #[test]
    fn push_bitwise() {
        let n = 37;
        let mut r = Rng(3);
        let mut mk =
            |scale: f64| -> Vec<f64> { (0..n).map(|_| scale * (r.next_f64() - 0.5)).collect() };
        let (ex, ey, ez) = (mk(1e10), mk(1e10), mk(1e10));
        let (bx, by, bz) = (mk(1e2), mk(1e2), mk(1e2));
        let u0: Vec<f64> = mk(1e8);
        for pusher in [Pusher::Boris, Pusher::Vay] {
            let (mut ax, mut ay, mut az) = (u0.clone(), u0.clone(), u0.clone());
            let (mut lx, mut ly, mut lz) = (u0.clone(), u0.clone(), u0.clone());
            push_momentum(
                pusher, &mut ax, &mut ay, &mut az, &ex, &ey, &ez, &bx, &by, &bz, 1.0,
            );
            Lanes::<8>::push_momentum(
                pusher, &mut lx, &mut ly, &mut lz, &ex, &ey, &ez, &bx, &by, &bz, 1.0,
            );
            for p in 0..n {
                assert_eq!(ax[p].to_bits(), lx[p].to_bits());
                assert_eq!(ay[p].to_bits(), ly[p].to_bits());
                assert_eq!(az[p].to_bits(), lz[p].to_bits());
            }
        }
    }

    #[test]
    fn f32_instantiation_runs() {
        let g = geom();
        let n = 12;
        let (x64, _, z64) = positions(n, 99, 4);
        let x: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let z: Vec<f32> = z64.iter().map(|&v| v as f32).collect();
        let mut data: Vec<Vec<f32>> = (0..6).map(|_| vec![1.0; (NX * NY * NZ) as usize]).collect();
        fn mk(d: &[f32]) -> FieldView<'_, f32> {
            FieldView {
                data: d,
                lo: LO,
                nx: NX,
                nxy: NX * NY,
                half: [false; 3],
            }
        }
        let mut outs = vec![vec![0.0f32; n]; 6];
        {
            let [d0, d1, d2, d3, d4, d5] = &mut data[..] else {
                unreachable!()
            };
            let f = EmViews {
                ex: mk(d0),
                ey: mk(d1),
                ez: mk(d2),
                bx: mk(d3),
                by: mk(d4),
                bz: mk(d5),
            };
            let [o0, o1, o2, o3, o4, o5] = &mut outs[..] else {
                unreachable!()
            };
            let mut out = EmOut {
                ex: o0,
                ey: o1,
                ez: o2,
                bx: o3,
                by: o4,
                bz: o5,
            };
            Lanes::<8>::gather2::<Quadratic, f32>(&x, &z, &g, &f, &mut out);
        }
        // Unit field, partition of unity: every gathered value is 1.
        for c in &outs {
            for &v in c {
                assert!((v - 1.0).abs() < 1e-5);
            }
        }
    }
}
