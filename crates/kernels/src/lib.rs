//! `mrpic-kernels` — the Particle-In-Cell hot loops.
//!
//! The two main hotspots of an electromagnetic PIC code are the field
//! gather and the current deposition (paper §V-A): interpolating data
//! between continuous particle positions and the discrete staggered mesh.
//! This crate implements those kernels (plus the relativistic particle
//! pushers) in both a **baseline** per-particle form and an **optimized**
//! particle-blocked form that mirrors the paper's A64FX vectorization
//! strategy: compute interpolation weights for groups of `N_grp` particles
//! into transposed structure-of-arrays temporaries that stay cache
//! resident, so the innermost loops run over particles, not over the tiny
//! stencil extents.
//!
//! All kernels are generic over [`Real`] (`f32`/`f64`) so the paper's
//! double-precision and mixed-precision modes can both be exercised.
//!
//! Conventions:
//! * positions are physical (SI meters); a [`Geom`] converts to cell
//!   coordinates `xi = (x - xmin) / dx`, where `xmin` is the physical
//!   coordinate of the index-0 grid line;
//! * `u = gamma * v` (SI m/s) is the momentum-like velocity variable;
//! * field views ([`view::FieldView`]) carry per-axis staggering: a
//!   component *half* in an axis has its points at `(i + 1/2) dx`.

// Stencil and particle loops index several parallel arrays by the same
// counter; iterator zips would obscure the numerics. Silence the style
// lint crate-wide rather than per-loop.
#![allow(clippy::needless_range_loop)]

pub mod constants;
pub mod deposit;
pub mod flops;
pub mod gather;
pub mod lanes;
pub mod push;
pub mod real;
pub mod shape;
pub mod view;

pub use lanes::{Lanes, DEFAULT_LANE_WIDTH, LANE_WIDTHS};
pub use real::Real;
pub use shape::{Cubic, Linear, Ngp, Quadratic, Shape};
pub use view::{FieldView, FieldViewMut, Geom};
