//! Floating-point abstraction so kernels compile in single and double
//! precision (the paper's DP and mixed-precision modes, Table III).

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar type of a kernel instantiation.
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialOrd
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
{
    const ZERO: Self;
    const ONE: Self;
    const HALF: Self;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    /// Largest integer `<= self`, as i64.
    fn floor_i64(self) -> i64;
    /// Largest integer `<= self`, staying in the float domain (no
    /// int round-trip on the dependency chain).
    fn floor(self) -> Self;
    /// Integer value of an *integral* float (a `floor` result) used as
    /// a grid index. Equals `floor_i64` for every integral value with
    /// magnitude below 2^51 (f64) / 2^23 (f32) — any conceivable grid
    /// index; outside that domain (huge values, infinities, NaN) it
    /// returns an arbitrary far-out-of-range integer instead of
    /// saturating, never UB. Unlike an `as` cast, this compiles to a
    /// branchless add + bit reinterpretation that vectorizes.
    fn index_i64(self) -> i64;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn min(self, o: Self) -> Self;
    fn max(self, o: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn floor_i64(self) -> i64 {
                // Branchless truncate-and-correct floor. On the baseline
                // x86-64 target (no SSE4.1 `roundsd`) `<$t>::floor` lowers
                // to a libm call inside every shape evaluation; the cast
                // form stays inline and vectorizes. Exactly equivalent to
                // `floor(self) as i64`: below 2^52 (f64) / 2^23 (f32) the
                // truncation is representable, above it every value is
                // already an integer, and saturation/NaN casts match.
                let t = self as i64;
                t - ((self < t as $t) as i64)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                // With SSE4.1+ (always true under the repo's
                // `target-cpu=native`) this is a single `roundsd` /
                // `vroundpd` and the shape evaluations' fractional
                // offset `xi - xi.floor()` never leaves the FP unit.
                // Elsewhere fall back to the same branchless cast form
                // as `floor_i64` rather than a libm call.
                #[cfg(any(target_feature = "sse4.1", not(target_arch = "x86_64")))]
                {
                    <$t>::floor(self)
                }
                #[cfg(all(target_arch = "x86_64", not(target_feature = "sse4.1")))]
                {
                    let t = (self as i64) as $t;
                    t - (((self < t) as i64) as $t)
                }
            }
            #[inline(always)]
            fn index_i64(self) -> i64 {
                // Magic-bias conversion: adding 1.5*2^52 pins the
                // exponent so the mantissa bits *are* the biased
                // integer; subtracting the bias bits recovers it. For
                // integral `self` in (-2^51, 2^51) the add is exact and
                // the result equals `floor_i64`; outside, the bit
                // arithmetic lands far out of any grid box (the
                // containment checks then route the block to the scalar
                // fallback). No float compare, no saturation fixup —
                // one packed add per vector of lanes.
                const MAGIC: f64 = 6755399441055744.0; // 1.5 * 2^52
                let y = (self as f64) + MAGIC;
                (y.to_bits() as i64).wrapping_sub(MAGIC.to_bits() as i64)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // One hardware FMA (single rounding, deterministic) when
                // the target has it — the repo builds with
                // `target-cpu=native`, so that is the common case. The
                // fallback stays a plain mul+add rather than forcing a
                // slow soft-FMA libcall on targets without the unit.
                #[cfg(target_feature = "fma")]
                {
                    <$t>::mul_add(self, a, b)
                }
                #[cfg(not(target_feature = "fma"))]
                {
                    self * a + b
                }
            }
            #[inline(always)]
            fn min(self, o: Self) -> Self {
                <$t>::min(self, o)
            }
            #[inline(always)]
            fn max(self, o: Self) -> Self {
                <$t>::max(self, o)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>() {
        assert_eq!(T::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(T::from_f64(-2.25).floor_i64(), -3);
        assert!((T::from_f64(2.0).sqrt().to_f64() - 2.0f64.sqrt()).abs() < 1e-6);
        assert_eq!(T::HALF.to_f64(), 0.5);
        assert_eq!(
            T::from_f64(2.0).mul_add(T::from_f64(3.0), T::ONE).to_f64(),
            7.0
        );
    }

    #[test]
    fn both_precisions() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }

    #[test]
    fn floor_matches_libm() {
        // The branchless floor must agree with `floor()` everywhere the
        // kernels use it: negatives, exact integers, half steps, and
        // values just below/above integers.
        let mut xs: Vec<f64> = Vec::new();
        for i in -2000..2000 {
            let x = i as f64 * 0.0625;
            xs.extend_from_slice(&[x, x - 1e-12, x + 1e-12]);
        }
        xs.extend_from_slice(&[-0.0, 0.0, 1e9 + 0.5, -1e9 - 0.5]);
        for &x in &xs {
            assert_eq!(x.floor_i64(), f64::floor(x) as i64, "x = {x}");
            assert_eq!(<f64 as Real>::floor(x), f64::floor(x), "x = {x}");
            let y = x as f32;
            assert_eq!(y.floor_i64(), f32::floor(y) as i64, "y = {y}");
            assert_eq!(<f32 as Real>::floor(y), f32::floor(y), "y = {y}");
        }
    }

    #[test]
    fn index_matches_floor_on_integral_values() {
        // `index_i64` must agree with `floor_i64` on every integral
        // float a shape evaluation can anchor at.
        for i in -1_000_000i64..1_000_000 {
            let x = i as f64;
            assert_eq!(x.index_i64(), x.floor_i64(), "x = {x}");
        }
        for &x in &[-2.0f64.powi(40), 2.0f64.powi(40), -1.0, -0.0, 0.0] {
            assert_eq!(x.index_i64(), x.floor_i64(), "x = {x}");
        }
        for i in -100_000i64..100_000 {
            let y = i as f32;
            assert_eq!(y.index_i64(), y.floor_i64(), "y = {y}");
        }
    }
}
