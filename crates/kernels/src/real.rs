//! Floating-point abstraction so kernels compile in single and double
//! precision (the paper's DP and mixed-precision modes, Table III).

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar type of a kernel instantiation.
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialOrd
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
{
    const ZERO: Self;
    const ONE: Self;
    const HALF: Self;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    /// Largest integer `<= self`, as i64.
    fn floor_i64(self) -> i64;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn min(self, o: Self) -> Self;
    fn max(self, o: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn floor_i64(self) -> i64 {
                <$t>::floor(self) as i64
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // Plain expression: lets LLVM contract when profitable
                // without forcing a slow soft-FMA on targets lacking one.
                self * a + b
            }
            #[inline(always)]
            fn min(self, o: Self) -> Self {
                <$t>::min(self, o)
            }
            #[inline(always)]
            fn max(self, o: Self) -> Self {
                <$t>::max(self, o)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>() {
        assert_eq!(T::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(T::from_f64(-2.25).floor_i64(), -3);
        assert!((T::from_f64(2.0).sqrt().to_f64() - 2.0f64.sqrt()).abs() < 1e-6);
        assert_eq!(T::HALF.to_f64(), 0.5);
        assert_eq!(
            T::from_f64(2.0).mul_add(T::from_f64(3.0), T::ONE).to_f64(),
            7.0
        );
    }

    #[test]
    fn both_precisions() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }
}
