//! Physical constants (SI, CODATA 2018) and laser–plasma helpers.

/// Speed of light in vacuum \[m/s\].
pub const C: f64 = 299_792_458.0;
/// Vacuum permittivity \[F/m\].
pub const EPS0: f64 = 8.854_187_812_8e-12;
/// Vacuum permeability \[H/m\].
pub const MU0: f64 = 1.256_637_062_12e-6;
/// Elementary charge \[C\].
pub const Q_E: f64 = 1.602_176_634e-19;
/// Electron mass \[kg\].
pub const M_E: f64 = 9.109_383_701_5e-31;
/// Proton mass \[kg\].
pub const M_P: f64 = 1.672_621_923_69e-27;
/// c² \[m²/s²\].
pub const C2: f64 = C * C;

/// Laser angular frequency for wavelength `lambda` \[rad/s\].
#[inline]
pub fn omega_laser(lambda: f64) -> f64 {
    2.0 * std::f64::consts::PI * C / lambda
}

/// Critical plasma density for wavelength `lambda` \[1/m³\]: the density
/// above which a plasma reflects the laser (the paper's solid target is
/// 50–55 n_c, the gas 2.34e18 cm⁻³ ≈ 1.3e-3 n_c at 0.8 µm).
#[inline]
pub fn critical_density(lambda: f64) -> f64 {
    let w = omega_laser(lambda);
    EPS0 * M_E * w * w / (Q_E * Q_E)
}

/// Electron plasma angular frequency for density `n` \[1/m³\].
#[inline]
pub fn plasma_frequency(n: f64) -> f64 {
    (n * Q_E * Q_E / (EPS0 * M_E)).sqrt()
}

/// Normalized laser amplitude a0 for peak field `e0` \[V/m\] at `lambda`.
#[inline]
pub fn a0_from_field(e0: f64, lambda: f64) -> f64 {
    Q_E * e0 / (M_E * C * omega_laser(lambda))
}

/// Peak laser field \[V/m\] for a given a0 at `lambda`.
#[inline]
pub fn field_from_a0(a0: f64, lambda: f64) -> f64 {
    a0 * M_E * C * omega_laser(lambda) / Q_E
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_speed_consistency() {
        // c = 1/sqrt(eps0 mu0)
        assert!(((1.0 / (EPS0 * MU0).sqrt()) - C).abs() / C < 1e-9);
    }

    #[test]
    fn critical_density_at_800nm() {
        // Known value: n_c(0.8 um) ~ 1.74e27 m^-3 (1.74e21 cm^-3).
        let nc = critical_density(0.8e-6);
        assert!((nc / 1.742e27 - 1.0).abs() < 0.01, "nc = {nc:e}");
    }

    #[test]
    fn plasma_frequency_scale() {
        // Gas density from the paper: 2.34e18 cm^-3 = 2.34e24 m^-3.
        let wp = plasma_frequency(2.34e24);
        // ~8.6e13 rad/s
        assert!((wp / 8.63e13 - 1.0).abs() < 0.01, "wp = {wp:e}");
    }

    #[test]
    fn a0_roundtrip() {
        let lambda = 0.8e-6;
        let e0 = field_from_a0(3.0, lambda);
        assert!((a0_from_field(e0, lambda) - 3.0).abs() < 1e-12);
        // a0=1 at 0.8um is ~4e12 V/m.
        assert!((field_from_a0(1.0, lambda) / 4.01e12 - 1.0).abs() < 0.01);
    }
}
