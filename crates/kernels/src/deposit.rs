//! Charge and current deposition.
//!
//! The production path is the **Esirkepov** charge-conserving scheme: the
//! current is built from the per-axis difference of the old and new shape
//! factors so that the discrete continuity equation
//! `(rho^{n+1} - rho^n)/dt + div J = 0` holds to machine precision on the
//! Yee lattice — which in turn keeps Gauss's law satisfied by the FDTD
//! update without any cleaning step. A *direct* (momentum-conserving but
//! non-charge-conserving) deposition is provided as a baseline.
//!
//! The *blocked* variant mirrors the paper's optimization (§V-A.1):
//! particles are processed in groups whose contributions are accumulated
//! into a small cache-resident tile before being added to the global
//! array, turning scattered writes into dense ones.

use crate::real::Real;
use crate::shape::{dual, Shape};
use crate::view::{FieldViewMut, Geom};

/// The three current components of one deposition target.
pub struct JViews<'a, T> {
    pub jx: FieldViewMut<'a, T>,
    pub jy: FieldViewMut<'a, T>,
    pub jz: FieldViewMut<'a, T>,
}

const THIRD: f64 = 1.0 / 3.0;

/// 3-D Esirkepov current deposition.
///
/// `x0.. z0` are positions at step `n`, `x1.. z1` at `n+1`; `w` the
/// macroparticle weights; `q` the species charge. Currents land on the
/// Yee-staggered `jx, jy, jz` (same staggering as E).
#[allow(clippy::too_many_arguments)]
pub fn esirkepov3<S: Shape, T: Real>(
    x0: &[T],
    y0: &[T],
    z0: &[T],
    x1: &[T],
    y1: &[T],
    z1: &[T],
    w: &[T],
    q: T,
    dt: T,
    geom: &Geom,
    j: &mut JViews<'_, T>,
) {
    let n = x0.len();
    let [dx, dy, dz] = geom.dx;
    let cx = q / (dt * T::from_f64(dy * dz));
    let cy = q / (dt * T::from_f64(dx * dz));
    let cz = q / (dt * T::from_f64(dx * dy));
    let half = T::HALF;
    let third = T::from_f64(THIRD);
    for p in 0..n {
        let (ax, s0x, s1x) = dual::<S, T>(geom.xi(0, x0[p]), geom.xi(0, x1[p]));
        let (ay, s0y, s1y) = dual::<S, T>(geom.xi(1, y0[p]), geom.xi(1, y1[p]));
        let (az, s0z, s1z) = dual::<S, T>(geom.xi(2, z0[p]), geom.xi(2, z1[p]));
        let len = S::SUPPORT + 1;
        let mut dsx = [T::ZERO; 5];
        let mut dsy = [T::ZERO; 5];
        let mut dsz = [T::ZERO; 5];
        // Prefix sums of the shape differences (see `esirkepov2` for why
        // the sweep factors as `wt * ps[a]`).
        let mut psx = [T::ZERO; 5];
        let mut psy = [T::ZERO; 5];
        let mut psz = [T::ZERO; 5];
        let (mut rx, mut ry, mut rz) = (T::ZERO, T::ZERO, T::ZERO);
        for i in 0..len {
            dsx[i] = s1x[i] - s0x[i];
            dsy[i] = s1y[i] - s0y[i];
            dsz[i] = s1z[i] - s0z[i];
            rx += dsx[i];
            ry += dsy[i];
            rz += dsz[i];
            psx[i] = rx;
            psy[i] = ry;
            psz[i] = rz;
        }
        let (wx, wy, wz) = (cx * w[p], cy * w[p], cz * w[p]);
        let (nwx, nwy, nwz) = (-wx, -wy, -wz);
        // The time-averaged transverse weight
        //   s0_u s0_v + (ds_u s0_v + s0_u ds_v)/2 + ds_u ds_v / 3
        // factors as `s0_u p + ds_u q` with `p = s0_v + ds_v/2` and
        // `q = s0_v/2 + ds_v/3` hoisted out of the u loop — two FMAs per
        // point instead of eight scalar ops.
        // Jx: prefix sum along x for each (y, z) in the window.
        for c in 0..len {
            let pz = half.mul_add(dsz[c], s0z[c]);
            let qz = third.mul_add(dsz[c], half * s0z[c]);
            for b in 0..len {
                let wt = dsy[b].mul_add(qz, s0y[b] * pz);
                let nw = nwx * wt;
                for a in 0..len - 1 {
                    j.jx.madd(ax + a as i64, ay + b as i64, az + c as i64, nw, psx[a]);
                }
            }
        }
        // Jy: prefix along y. Each (a, b, c) slot gets exactly one
        // contribution per particle, so the sweep runs a-innermost
        // (contiguous stores) with the per-a weights hoisted; per-slot
        // values and cross-particle order are unchanged.
        for c in 0..len {
            let pz = half.mul_add(dsz[c], s0z[c]);
            let qz = third.mul_add(dsz[c], half * s0z[c]);
            let mut nwy_a = [T::ZERO; 5];
            for a in 0..len {
                nwy_a[a] = nwy * dsx[a].mul_add(qz, s0x[a] * pz);
            }
            for b in 0..len - 1 {
                for a in 0..len {
                    j.jy.madd(
                        ax + a as i64,
                        ay + b as i64,
                        az + c as i64,
                        nwy_a[a],
                        psy[b],
                    );
                }
            }
        }
        // Jz: prefix along z, same reordering as Jy.
        for b in 0..len {
            let py = half.mul_add(dsy[b], s0y[b]);
            let qy = third.mul_add(dsy[b], half * s0y[b]);
            let mut nwz_a = [T::ZERO; 5];
            for a in 0..len {
                nwz_a[a] = nwz * dsx[a].mul_add(qy, s0x[a] * py);
            }
            for c in 0..len - 1 {
                for a in 0..len {
                    j.jz.madd(
                        ax + a as i64,
                        ay + b as i64,
                        az + c as i64,
                        nwz_a[a],
                        psz[c],
                    );
                }
            }
        }
    }
}

/// 2-D (x–z) Esirkepov deposition; `vy` is the out-of-plane velocity at
/// the half step (deposited directly with time-averaged weights).
#[allow(clippy::too_many_arguments)]
pub fn esirkepov2<S: Shape, T: Real>(
    x0: &[T],
    z0: &[T],
    x1: &[T],
    z1: &[T],
    vy: &[T],
    w: &[T],
    q: T,
    dt: T,
    geom: &Geom,
    j: &mut JViews<'_, T>,
) {
    let n = x0.len();
    let [dx, dy, dz] = geom.dx;
    let cx = q / (dt * T::from_f64(dy * dz));
    let cz = q / (dt * T::from_f64(dx * dy));
    let cy = q / T::from_f64(dx * dy * dz);
    let half = T::HALF;
    let third = T::from_f64(THIRD);
    let jy_plane = j.jy.lo[1];
    let jx_plane = j.jx.lo[1];
    let jz_plane = j.jz.lo[1];
    let len = S::SUPPORT + 1;
    for p in 0..n {
        let (ax, s0x, s1x) = dual::<S, T>(geom.xi(0, x0[p]), geom.xi(0, x1[p]));
        let (az, s0z, s1z) = dual::<S, T>(geom.xi(2, z0[p]), geom.xi(2, z1[p]));
        let mut dsx = [T::ZERO; 5];
        let mut dsz = [T::ZERO; 5];
        // Running prefix sums of the shape differences: the Esirkepov
        // sweep `acc += ds[a] * wt` distributes over the row-constant
        // `wt`, so `acc(a) = wt * ps[a]` — computing the prefix once per
        // particle removes the serial FMA chain from every row.
        let mut psx = [T::ZERO; 5];
        let mut psz = [T::ZERO; 5];
        let (mut rx, mut rz) = (T::ZERO, T::ZERO);
        for i in 0..len {
            dsx[i] = s1x[i] - s0x[i];
            dsz[i] = s1z[i] - s0z[i];
            rx += dsx[i];
            rz += dsz[i];
            psx[i] = rx;
            psz[i] = rz;
        }
        let (wxc, wyc, wzc) = (cx * w[p], cy * w[p] * vy[p], cz * w[p]);
        let (nwxc, nwzc) = (-wxc, -wzc);
        for c in 0..len {
            let wt = half.mul_add(dsz[c], s0z[c]);
            let nw = nwxc * wt;
            for a in 0..len - 1 {
                j.jx.madd(ax + a as i64, jx_plane, az + c as i64, nw, psx[a]);
            }
        }
        // Jz: each (a, c) slot receives exactly one contribution per
        // particle, so the sweep is reordered c-outer / a-inner to make
        // the innermost stores contiguous; the per-slot value (and the
        // cross-particle accumulation order) is unchanged.
        let mut nwz = [T::ZERO; 5];
        for a in 0..len {
            nwz[a] = nwzc * half.mul_add(dsx[a], s0x[a]);
        }
        for c in 0..len - 1 {
            for a in 0..len {
                j.jz.madd(ax + a as i64, jz_plane, az + c as i64, nwz[a], psz[c]);
            }
        }
        // Jy (out of plane): factored time-averaged weights, see
        // `esirkepov3`.
        for c in 0..len {
            let pz = half.mul_add(dsz[c], s0z[c]);
            let qz = third.mul_add(dsz[c], half * s0z[c]);
            for a in 0..len {
                let wt = dsx[a].mul_add(qz, s0x[a] * pz);
                j.jy.madd(ax + a as i64, jy_plane, az + c as i64, wyc, wt);
            }
        }
    }
}

/// Nodal charge density deposition (3-D).
pub fn deposit_rho3<S: Shape, T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    w: &[T],
    q: T,
    geom: &Geom,
    rho: &mut FieldViewMut<'_, T>,
) {
    let inv_dv = T::from_f64(1.0 / geom.dv());
    for p in 0..x.len() {
        let (ix, wx) = S::eval(geom.xi(0, x[p]));
        let (iy, wy) = S::eval(geom.xi(1, y[p]));
        let (iz, wz) = S::eval(geom.xi(2, z[p]));
        let qw = q * w[p] * inv_dv;
        for c in 0..S::SUPPORT {
            for b in 0..S::SUPPORT {
                let f = qw * wz[c] * wy[b];
                for a in 0..S::SUPPORT {
                    rho.add(ix + a as i64, iy + b as i64, iz + c as i64, f * wx[a]);
                }
            }
        }
    }
}

/// Nodal charge density deposition (2-D, x–z).
pub fn deposit_rho2<S: Shape, T: Real>(
    x: &[T],
    z: &[T],
    w: &[T],
    q: T,
    geom: &Geom,
    rho: &mut FieldViewMut<'_, T>,
) {
    let inv_dv = T::from_f64(1.0 / geom.dv());
    let plane = rho.lo[1];
    for p in 0..x.len() {
        let (ix, wx) = S::eval(geom.xi(0, x[p]));
        let (iz, wz) = S::eval(geom.xi(2, z[p]));
        let qw = q * w[p] * inv_dv;
        for c in 0..S::SUPPORT {
            let f = qw * wz[c];
            for a in 0..S::SUPPORT {
                rho.add(ix + a as i64, plane, iz + c as i64, f * wx[a]);
            }
        }
    }
}

/// Direct (non-charge-conserving) 3-D current deposition at the given
/// positions with velocities `v* = u*/gamma`; baseline for comparisons.
#[allow(clippy::too_many_arguments)]
pub fn direct3<S: Shape, T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    vx: &[T],
    vy: &[T],
    vz: &[T],
    w: &[T],
    q: T,
    geom: &Geom,
    j: &mut JViews<'_, T>,
) {
    let inv_dv = T::from_f64(1.0 / geom.dv());
    for p in 0..x.len() {
        let xi = [geom.xi(0, x[p]), geom.xi(1, y[p]), geom.xi(2, z[p])];
        let qw = q * w[p] * inv_dv;
        deposit_component::<S, T>(&mut j.jx, xi, qw * vx[p]);
        deposit_component::<S, T>(&mut j.jy, xi, qw * vy[p]);
        deposit_component::<S, T>(&mut j.jz, xi, qw * vz[p]);
    }
}

#[inline(always)]
fn deposit_component<S: Shape, T: Real>(f: &mut FieldViewMut<'_, T>, xi: [T; 3], val: T) {
    let (ix, wx) = S::eval(xi[0] - T::from_f64(f.off(0)));
    let (iy, wy) = S::eval(xi[1] - T::from_f64(f.off(1)));
    let (iz, wz) = S::eval(xi[2] - T::from_f64(f.off(2)));
    for c in 0..S::SUPPORT {
        for b in 0..S::SUPPORT {
            let vv = val * wz[c] * wy[b];
            for a in 0..S::SUPPORT {
                f.add(ix + a as i64, iy + b as i64, iz + c as i64, vv * wx[a]);
            }
        }
    }
}

/// Optimized 3-D Esirkepov (the §V-A.1 restructuring, retargeted at this
/// host ISA): per-particle row bases are precomputed once, the three
/// sweep loops run over contiguous rows with fused multiply-adds, and
/// the hot read-modify-write skips bounds checks (the window-containment
/// guarantee is the same guard-reach contract the baseline requires of
/// the caller, asserted in debug builds).
#[allow(clippy::too_many_arguments)]
pub fn esirkepov3_blocked<S: Shape, T: Real>(
    x0: &[T],
    y0: &[T],
    z0: &[T],
    x1: &[T],
    y1: &[T],
    z1: &[T],
    w: &[T],
    q: T,
    dt: T,
    geom: &Geom,
    j: &mut JViews<'_, T>,
) {
    let n = x0.len();
    let [dx, dy, dz] = geom.dx;
    let cx = q / (dt * T::from_f64(dy * dz));
    let cy = q / (dt * T::from_f64(dx * dz));
    let cz = q / (dt * T::from_f64(dx * dy));
    let half = T::HALF;
    let third = T::from_f64(THIRD);
    for p in 0..n {
        let (ax, s0x, s1x) = dual::<S, T>(geom.xi(0, x0[p]), geom.xi(0, x1[p]));
        let (ay, s0y, s1y) = dual::<S, T>(geom.xi(1, y0[p]), geom.xi(1, y1[p]));
        let (az, s0z, s1z) = dual::<S, T>(geom.xi(2, z0[p]), geom.xi(2, z1[p]));
        let len = S::SUPPORT + 1;
        let mut dsx = [T::ZERO; 5];
        let mut dsy = [T::ZERO; 5];
        let mut dsz = [T::ZERO; 5];
        for i in 0..len {
            dsx[i] = s1x[i] - s0x[i];
            dsy[i] = s1y[i] - s0y[i];
            dsz[i] = s1z[i] - s0z[i];
        }
        let (wx, wy, wz) = (cx * w[p], cy * w[p], cz * w[p]);
        let bx = j.jx.idx(ax, ay, az);
        let by = j.jy.idx(ax, ay, az);
        let bz = j.jz.idx(ax, ay, az);
        debug_assert!(
            bx + ((len - 1) as i64 * (j.jx.nxy + j.jx.nx)) as usize + len <= j.jx.data.len()
        );
        // Jx: prefix sum along the contiguous x rows.
        for c in 0..len {
            for b in 0..len {
                let wt = s0y[b] * s0z[c]
                    + half * (dsy[b] * s0z[c] + s0y[b] * dsz[c])
                    + third * dsy[b] * dsz[c];
                let row = bx + (c as i64 * j.jx.nxy + b as i64 * j.jx.nx) as usize;
                let mut acc = T::ZERO;
                for a in 0..len - 1 {
                    acc = dsx[a].mul_add(wt, acc);
                    // SAFETY: guard-reach contract (debug-asserted above).
                    unsafe {
                        let slot = j.jx.data.get_unchecked_mut(row + a);
                        *slot = (-wx * acc) + *slot;
                    }
                }
            }
        }
        // Jy: prefix along y; rows along x stay contiguous.
        for c in 0..len {
            let mut acc_row = [T::ZERO; 5];
            for b in 0..len - 1 {
                let row = by + (c as i64 * j.jy.nxy + b as i64 * j.jy.nx) as usize;
                for a in 0..len {
                    let wt = s0x[a] * s0z[c]
                        + half * (dsx[a] * s0z[c] + s0x[a] * dsz[c])
                        + third * dsx[a] * dsz[c];
                    acc_row[a] = dsy[b].mul_add(wt, acc_row[a]);
                    unsafe {
                        let slot = j.jy.data.get_unchecked_mut(row + a);
                        *slot = (-wy * acc_row[a]) + *slot;
                    }
                }
            }
        }
        // Jz: prefix along z.
        for b in 0..len {
            let mut acc_row = [T::ZERO; 5];
            for c in 0..len - 1 {
                let row = bz + (c as i64 * j.jz.nxy + b as i64 * j.jz.nx) as usize;
                for a in 0..len {
                    let wt = s0x[a] * s0y[b]
                        + half * (dsx[a] * s0y[b] + s0x[a] * dsy[b])
                        + third * dsx[a] * dsy[b];
                    acc_row[a] = dsz[c].mul_add(wt, acc_row[a]);
                    unsafe {
                        let slot = j.jz.data.get_unchecked_mut(row + a);
                        *slot = (-wz * acc_row[a]) + *slot;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{Cubic, Linear, Quadratic};

    struct Grid {
        jx: Vec<f64>,
        jy: Vec<f64>,
        jz: Vec<f64>,
        rho0: Vec<f64>,
        rho1: Vec<f64>,
        lo: [i64; 3],
        n: [i64; 3],
    }

    impl Grid {
        fn new(lo: [i64; 3], n: [i64; 3]) -> Self {
            let len = (n[0] * n[1] * n[2]) as usize;
            Self {
                jx: vec![0.0; len],
                jy: vec![0.0; len],
                jz: vec![0.0; len],
                rho0: vec![0.0; len],
                rho1: vec![0.0; len],
                lo,
                n,
            }
        }

        fn views(&mut self) -> JViews<'_, f64> {
            let (nx, nxy) = (self.n[0], self.n[0] * self.n[1]);
            JViews {
                jx: FieldViewMut {
                    data: &mut self.jx,
                    lo: self.lo,
                    nx,
                    nxy,
                    half: [true, false, false],
                },
                jy: FieldViewMut {
                    data: &mut self.jy,
                    lo: self.lo,
                    nx,
                    nxy,
                    half: [false, true, false],
                },
                jz: FieldViewMut {
                    data: &mut self.jz,
                    lo: self.lo,
                    nx,
                    nxy,
                    half: [false, false, true],
                },
            }
        }

        fn at(v: &[f64], lo: [i64; 3], n: [i64; 3], i: i64, jj: i64, k: i64) -> f64 {
            v[((k - lo[2]) * n[1] * n[0] + (jj - lo[1]) * n[0] + (i - lo[0])) as usize]
        }
    }

    fn geom(dx: [f64; 3]) -> Geom {
        Geom { xmin: [0.0; 3], dx }
    }

    /// The defining property: discrete continuity to machine precision.
    fn continuity3<S: Shape>(seed: u64) {
        let lo = [-8i64, -8, -8];
        let n = [24i64, 24, 24];
        let mut g = Grid::new(lo, n);
        let geo = geom([0.5e-6, 0.7e-6, 0.6e-6]);
        let dt = 0.8e-15;
        // Random particles with random sub-cell moves.
        let mut state = seed;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let np = 40;
        let mut p0 = [vec![0.0; np], vec![0.0; np], vec![0.0; np]];
        let mut p1 = [vec![0.0; np], vec![0.0; np], vec![0.0; np]];
        let w = vec![1.0e6; np];
        for p in 0..np {
            for d in 0..3 {
                let cell = -2.0 + 6.0 * rng();
                p0[d][p] = cell * geo.dx[d];
                // Move strictly less than one cell.
                p1[d][p] = p0[d][p] + (rng() - 0.5) * 0.95 * geo.dx[d];
            }
        }
        let q = -1.602e-19;
        {
            let mut j = g.views();
            esirkepov3::<S, f64>(
                &p0[0], &p0[1], &p0[2], &p1[0], &p1[1], &p1[2], &w, q, dt, &geo, &mut j,
            );
        }
        // Deposit rho at both times with the same shape order.
        {
            let (nx, nxy) = (n[0], n[0] * n[1]);
            let mut r0 = FieldViewMut {
                data: &mut g.rho0,
                lo,
                nx,
                nxy,
                half: [false; 3],
            };
            deposit_rho3::<S, f64>(&p0[0], &p0[1], &p0[2], &w, q, &geo, &mut r0);
            let mut r1 = FieldViewMut {
                data: &mut g.rho1,
                lo,
                nx,
                nxy,
                half: [false; 3],
            };
            deposit_rho3::<S, f64>(&p1[0], &p1[1], &p1[2], &w, q, &geo, &mut r1);
        }
        // Check (rho1-rho0)/dt + div J = 0 at every interior node.
        let [dx, dy, dz] = geo.dx;
        let mut max_resid = 0.0f64;
        let mut max_scale = 0.0f64;
        for k in lo[2] + 1..lo[2] + n[2] - 1 {
            for jj in lo[1] + 1..lo[1] + n[1] - 1 {
                for i in lo[0] + 1..lo[0] + n[0] - 1 {
                    let at = |v: &Vec<f64>, a: i64, b: i64, c: i64| Grid::at(v, lo, n, a, b, c);
                    let drho = (at(&g.rho1, i, jj, k) - at(&g.rho0, i, jj, k)) / dt;
                    let divj = (at(&g.jx, i, jj, k) - at(&g.jx, i - 1, jj, k)) / dx
                        + (at(&g.jy, i, jj, k) - at(&g.jy, i, jj - 1, k)) / dy
                        + (at(&g.jz, i, jj, k) - at(&g.jz, i, jj, k - 1)) / dz;
                    max_resid = max_resid.max((drho + divj).abs());
                    max_scale = max_scale.max(drho.abs());
                }
            }
        }
        assert!(max_scale > 0.0, "test produced no charge");
        assert!(
            max_resid <= 1e-9 * max_scale,
            "order {}: continuity violated: resid {max_resid:e} vs scale {max_scale:e}",
            S::ORDER
        );
    }

    #[test]
    fn continuity_all_orders_3d() {
        continuity3::<Linear>(42);
        continuity3::<Quadratic>(43);
        continuity3::<Cubic>(44);
    }

    #[test]
    fn continuity_2d() {
        let lo = [-8i64, 0, -8];
        let n = [24i64, 1, 24];
        let len = (n[0] * n[1] * n[2]) as usize;
        let (mut jx, mut jy, mut jz) = (vec![0.0; len], vec![0.0; len], vec![0.0; len]);
        let (mut rho0, mut rho1) = (vec![0.0; len], vec![0.0; len]);
        let geo = geom([0.5e-6, 1.0e-6, 0.6e-6]);
        let dt = 0.8e-15;
        let np = 25;
        let mut state = 7u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let (mut x0, mut z0, mut x1, mut z1) =
            (vec![0.0; np], vec![0.0; np], vec![0.0; np], vec![0.0; np]);
        let vy = vec![1.0e7; np];
        let w = vec![2.0e5; np];
        for p in 0..np {
            x0[p] = (-2.0 + 6.0 * rng()) * geo.dx[0];
            z0[p] = (-2.0 + 6.0 * rng()) * geo.dx[2];
            x1[p] = x0[p] + (rng() - 0.5) * 0.9 * geo.dx[0];
            z1[p] = z0[p] + (rng() - 0.5) * 0.9 * geo.dx[2];
        }
        let q = -1.602e-19;
        let (nx, nxy) = (n[0], n[0] * n[1]);
        {
            let mut j = JViews {
                jx: FieldViewMut {
                    data: &mut jx,
                    lo,
                    nx,
                    nxy,
                    half: [true, false, false],
                },
                jy: FieldViewMut {
                    data: &mut jy,
                    lo,
                    nx,
                    nxy,
                    half: [false, true, false],
                },
                jz: FieldViewMut {
                    data: &mut jz,
                    lo,
                    nx,
                    nxy,
                    half: [false, false, true],
                },
            };
            esirkepov2::<Quadratic, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &geo, &mut j);
        }
        {
            let mut r0 = FieldViewMut {
                data: &mut rho0,
                lo,
                nx,
                nxy,
                half: [false; 3],
            };
            deposit_rho2::<Quadratic, f64>(&x0, &z0, &w, q, &geo, &mut r0);
            let mut r1 = FieldViewMut {
                data: &mut rho1,
                lo,
                nx,
                nxy,
                half: [false; 3],
            };
            deposit_rho2::<Quadratic, f64>(&x1, &z1, &w, q, &geo, &mut r1);
        }
        let at = |v: &Vec<f64>, i: i64, k: i64| v[((k - lo[2]) * n[0] + (i - lo[0])) as usize];
        let mut max_resid = 0.0f64;
        let mut max_scale = 0.0f64;
        for k in lo[2] + 1..lo[2] + n[2] - 1 {
            for i in lo[0] + 1..lo[0] + n[0] - 1 {
                let drho = (at(&rho1, i, k) - at(&rho0, i, k)) / dt;
                let divj = (at(&jx, i, k) - at(&jx, i - 1, k)) / geo.dx[0]
                    + (at(&jz, i, k) - at(&jz, i, k - 1)) / geo.dx[2];
                max_resid = max_resid.max((drho + divj).abs());
                max_scale = max_scale.max(drho.abs());
            }
        }
        assert!(max_scale > 0.0);
        assert!(
            max_resid <= 1e-9 * max_scale,
            "{max_resid:e} vs {max_scale:e}"
        );
    }

    #[test]
    fn total_current_matches_charge_flux() {
        // Integral of Jx over the grid = q*w*dx_move/dt exactly.
        let lo = [-6i64, -6, -6];
        let n = [16i64, 16, 16];
        let mut g = Grid::new(lo, n);
        let geo = geom([1.0e-6; 3]);
        let dt = 1.0e-15;
        let q = -1.602e-19;
        let w = [3.0e7];
        let (x0, y0, z0) = ([0.31e-6], [0.77e-6], [0.13e-6]);
        let (x1, y1, z1) = ([0.93e-6], [0.37e-6], [0.55e-6]);
        {
            let mut j = g.views();
            esirkepov3::<Cubic, f64>(&x0, &y0, &z0, &x1, &y1, &z1, &w, q, dt, &geo, &mut j);
        }
        let dv = geo.dv();
        let ix: f64 = g.jx.iter().sum::<f64>() * dv;
        let iy: f64 = g.jy.iter().sum::<f64>() * dv;
        let iz: f64 = g.jz.iter().sum::<f64>() * dv;
        let qw = q * w[0];
        assert!((ix - qw * (x1[0] - x0[0]) / dt).abs() < 1e-9 * ix.abs().max(1e-30));
        assert!((iy - qw * (y1[0] - y0[0]) / dt).abs() < 1e-9 * iy.abs().max(1e-30));
        assert!((iz - qw * (z1[0] - z0[0]) / dt).abs() < 1e-9 * iz.abs().max(1e-30));
    }

    #[test]
    fn rho_total_charge_conserved() {
        let lo = [-6i64, -6, -6];
        let n = [16i64, 16, 16];
        let len = (n[0] * n[1] * n[2]) as usize;
        let mut rho = vec![0.0; len];
        let geo = geom([0.5e-6, 0.25e-6, 1.0e-6]);
        let q = 1.602e-19;
        let w = [5.0e6, 2.0e6];
        {
            let mut r = FieldViewMut {
                data: &mut rho,
                lo,
                nx: n[0],
                nxy: n[0] * n[1],
                half: [false; 3],
            };
            deposit_rho3::<Quadratic, f64>(
                &[0.1e-6, 1.0e-6],
                &[0.2e-6, -0.3e-6],
                &[0.9e-6, 2.0e-6],
                &w,
                q,
                &geo,
                &mut r,
            );
        }
        let total: f64 = rho.iter().sum::<f64>() * geo.dv();
        let want = q * (w[0] + w[1]);
        assert!((total - want).abs() < 1e-12 * want.abs());
    }

    #[test]
    fn blocked_matches_baseline() {
        let lo = [-8i64, -8, -8];
        let n = [32i64, 32, 32];
        let geo = geom([1.0e-6; 3]);
        let dt = 1.5e-15;
        let q = -1.602e-19;
        let np = 200;
        let mut state = 99u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut p0 = [vec![0.0; np], vec![0.0; np], vec![0.0; np]];
        let mut p1 = [vec![0.0; np], vec![0.0; np], vec![0.0; np]];
        let w: Vec<f64> = (0..np).map(|i| 1.0e5 + i as f64).collect();
        for p in 0..np {
            for d in 0..3 {
                // Clustered positions (sorted-ish): locality like a tile.
                let cell = ((p / 32) as f64) * 1.5 - 6.0 + rng();
                p0[d][p] = cell * geo.dx[d];
                p1[d][p] = p0[d][p] + (rng() - 0.5) * 0.9 * geo.dx[d];
            }
        }
        let mut ga = Grid::new(lo, n);
        let mut gb = Grid::new(lo, n);
        {
            let mut j = ga.views();
            esirkepov3::<Quadratic, f64>(
                &p0[0], &p0[1], &p0[2], &p1[0], &p1[1], &p1[2], &w, q, dt, &geo, &mut j,
            );
        }
        {
            let mut j = gb.views();
            esirkepov3_blocked::<Quadratic, f64>(
                &p0[0], &p0[1], &p0[2], &p1[0], &p1[1], &p1[2], &w, q, dt, &geo, &mut j,
            );
        }
        let scale = ga.jx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(scale > 0.0);
        for (a, b) in ga.jx.iter().zip(&gb.jx) {
            assert!((a - b).abs() <= 1e-12 * scale);
        }
        for (a, b) in ga.jz.iter().zip(&gb.jz) {
            assert!((a - b).abs() <= 1e-12 * scale);
        }
    }

    #[test]
    fn direct_deposit_total_current() {
        let lo = [-6i64, -6, -6];
        let n = [16i64, 16, 16];
        let mut g = Grid::new(lo, n);
        let geo = geom([1.0e-6; 3]);
        let q = -1.602e-19;
        let w = [1.0e7];
        {
            let mut j = g.views();
            direct3::<Quadratic, f64>(
                &[0.4e-6],
                &[0.6e-6],
                &[0.2e-6],
                &[1.0e7],
                &[-2.0e7],
                &[3.0e7],
                &w,
                q,
                &geo,
                &mut j,
            );
        }
        let dv = geo.dv();
        assert!((g.jx.iter().sum::<f64>() * dv - q * w[0] * 1.0e7).abs() < 1e-10);
        assert!((g.jy.iter().sum::<f64>() * dv + q * w[0] * 2.0e7).abs() < 1e-10);
        assert!((g.jz.iter().sum::<f64>() * dv - q * w[0] * 3.0e7).abs() < 1e-10);
    }
}

/// Optimized 2-D (x–z) Esirkepov: contiguous rows, fused multiply-adds,
/// unchecked hot-loop writes (the 2-D counterpart of
/// [`esirkepov3_blocked`]).
#[allow(clippy::too_many_arguments)]
pub fn esirkepov2_blocked<S: Shape, T: Real>(
    x0: &[T],
    z0: &[T],
    x1: &[T],
    z1: &[T],
    vy: &[T],
    w: &[T],
    q: T,
    dt: T,
    geom: &Geom,
    j: &mut JViews<'_, T>,
) {
    let n = x0.len();
    let [dx, dy, dz] = geom.dx;
    let cx = q / (dt * T::from_f64(dy * dz));
    let cz = q / (dt * T::from_f64(dx * dy));
    let cy = q / T::from_f64(dx * dy * dz);
    let half = T::HALF;
    let third = T::from_f64(THIRD);
    let jy_plane = j.jy.lo[1];
    let jx_plane = j.jx.lo[1];
    let jz_plane = j.jz.lo[1];
    for p in 0..n {
        let (ax, s0x, s1x) = dual::<S, T>(geom.xi(0, x0[p]), geom.xi(0, x1[p]));
        let (az, s0z, s1z) = dual::<S, T>(geom.xi(2, z0[p]), geom.xi(2, z1[p]));
        let len = S::SUPPORT + 1;
        let mut dsx = [T::ZERO; 5];
        let mut dsz = [T::ZERO; 5];
        for i in 0..len {
            dsx[i] = s1x[i] - s0x[i];
            dsz[i] = s1z[i] - s0z[i];
        }
        let (wxc, wyc, wzc) = (cx * w[p], cy * w[p] * vy[p], cz * w[p]);
        let bx = j.jx.idx(ax, jx_plane, az);
        let by = j.jy.idx(ax, jy_plane, az);
        let bz = j.jz.idx(ax, jz_plane, az);
        debug_assert!(bx + ((len - 1) as i64 * j.jx.nxy) as usize + len <= j.jx.data.len());
        // Jx: prefix along x, rows contiguous.
        for c in 0..len {
            let wt = s0z[c] + half * dsz[c];
            let row = bx + (c as i64 * j.jx.nxy) as usize;
            let mut acc = T::ZERO;
            for a in 0..len - 1 {
                acc = dsx[a].mul_add(wt, acc);
                // SAFETY: guard-reach contract (debug-asserted above).
                unsafe {
                    let slot = j.jx.data.get_unchecked_mut(row + a);
                    *slot = (-wxc * acc) + *slot;
                }
            }
        }
        // Jz: prefix along z.
        let mut acc_row = [T::ZERO; 5];
        for c in 0..len - 1 {
            let row = bz + (c as i64 * j.jz.nxy) as usize;
            for a in 0..len {
                let wt = s0x[a] + half * dsx[a];
                acc_row[a] = dsz[c].mul_add(wt, acc_row[a]);
                unsafe {
                    let slot = j.jz.data.get_unchecked_mut(row + a);
                    *slot = (-wzc * acc_row[a]) + *slot;
                }
            }
        }
        // Jy (out of plane): direct with time-averaged weights.
        for c in 0..len {
            let row = by + (c as i64 * j.jy.nxy) as usize;
            for a in 0..len {
                let wt = s0x[a] * s0z[c]
                    + half * (dsx[a] * s0z[c] + s0x[a] * dsz[c])
                    + third * dsx[a] * dsz[c];
                unsafe {
                    let slot = j.jy.data.get_unchecked_mut(row + a);
                    *slot = wyc.mul_add(wt, *slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod blocked2_tests {
    use super::*;
    use crate::shape::Quadratic;

    #[test]
    fn esirkepov2_blocked_matches_baseline() {
        let lo = [-8i64, 0, -8];
        let n = [24i64, 1, 24];
        let len = (n[0] * n[2]) as usize;
        let geo = Geom {
            xmin: [0.0; 3],
            dx: [0.5e-6, 1.0e-6, 0.6e-6],
        };
        let dt = 0.8e-15;
        let q = -1.602e-19;
        let np = 30;
        let mut state = 99u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let (mut x0, mut z0, mut x1, mut z1) =
            (vec![0.0; np], vec![0.0; np], vec![0.0; np], vec![0.0; np]);
        let vy: Vec<f64> = (0..np).map(|_| 1.0e6 * rng()).collect();
        let w = vec![3.0e5; np];
        for p in 0..np {
            x0[p] = (-2.0 + 6.0 * rng()) * geo.dx[0];
            z0[p] = (-2.0 + 6.0 * rng()) * geo.dx[2];
            x1[p] = x0[p] + (rng() - 0.5) * 0.9 * geo.dx[0];
            z1[p] = z0[p] + (rng() - 0.5) * 0.9 * geo.dx[2];
        }
        let run = |blocked: bool| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
            let (mut jx, mut jy, mut jz) = (vec![0.0; len], vec![0.0; len], vec![0.0; len]);
            {
                let mut j = JViews {
                    jx: FieldViewMut {
                        data: &mut jx,
                        lo,
                        nx: n[0],
                        nxy: n[0],
                        half: [true, false, false],
                    },
                    jy: FieldViewMut {
                        data: &mut jy,
                        lo,
                        nx: n[0],
                        nxy: n[0],
                        half: [false, true, false],
                    },
                    jz: FieldViewMut {
                        data: &mut jz,
                        lo,
                        nx: n[0],
                        nxy: n[0],
                        half: [false, false, true],
                    },
                };
                if blocked {
                    esirkepov2_blocked::<Quadratic, f64>(
                        &x0, &z0, &x1, &z1, &vy, &w, q, dt, &geo, &mut j,
                    );
                } else {
                    esirkepov2::<Quadratic, f64>(&x0, &z0, &x1, &z1, &vy, &w, q, dt, &geo, &mut j);
                }
            }
            (jx, jy, jz)
        };
        let a = run(false);
        let b = run(true);
        let scale = a.0.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        for (x, y) in [(&a.0, &b.0), (&a.1, &b.1), (&a.2, &b.2)] {
            for (u, v) in x.iter().zip(y.iter()) {
                assert!((u - v).abs() <= 1e-11 * scale, "{u} vs {v}");
            }
        }
    }
}
