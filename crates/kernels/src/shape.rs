//! B-spline particle shape factors, orders 1–3.
//!
//! High-order shapes (quadratic/cubic splines) are essential for modeling
//! high-density plasmas while keeping the finite-grid instability at an
//! acceptable level (paper Table I, capability *a*). The shape of order
//! `n` spans `n + 1` grid points.
//!
//! `eval` takes the particle coordinate `xi` in *cell units* relative to
//! the index-0 grid line of the target component (stagger shifts are
//! applied by the caller) and returns the first touched index plus the
//! weights. Weights are a partition of unity for every `xi`.

use crate::real::Real;

/// A compile-time particle shape. `SUPPORT = ORDER + 1` points.
pub trait Shape: Copy + Send + Sync + 'static {
    const ORDER: usize;
    const SUPPORT: usize;
    /// The shape one order lower (used by the Galerkin gather, which
    /// reduces the order along staggered axes). NGP is its own lower.
    type Lower: Shape;

    /// FP-domain evaluation: the first touched grid index *as its exact
    /// floating-point floor value* plus the `SUPPORT` weights (tail of
    /// the fixed-size array is zero). Keeping the anchor in the FP
    /// domain leaves the body pure branch-free floating point — no
    /// int round-trip — so blocks of evaluations vectorize; `eval`
    /// derives the integer index from it exactly (the anchor is an
    /// integral float, representable well below 2^53).
    fn eval_fp<T: Real>(xi: T) -> (T, [T; 4]);

    /// First touched grid index and the `SUPPORT` weights.
    #[inline(always)]
    fn eval<T: Real>(xi: T) -> (i64, [T; 4]) {
        let (fa, w) = Self::eval_fp(xi);
        (fa.floor_i64(), w)
    }

    /// Evaluate a whole lane block at once into k-major (`w[k][lane]`)
    /// storage. Semantically the scalar `eval` per lane — bitwise
    /// identical weights and indices — but laid out as contiguous array
    /// passes the compiler auto-vectorizes: one pure-FP pass over the
    /// lanes (weights + FP anchors), then a separate index-conversion
    /// pass, so the integer converts never sit in the FP dependency
    /// chain.
    #[inline(always)]
    fn eval_block<T: Real, const W: usize>(xi: &[T; W], i0: &mut [i64; W], w: &mut [[T; W]; 4]) {
        let mut fa = [T::ZERO; W];
        for l in 0..W {
            let (f, wk) = Self::eval_fp(xi[l]);
            fa[l] = f;
            for k in 0..4 {
                w[k][l] = wk[k];
            }
        }
        // `index_i64` ≡ `floor_i64` on every in-grid anchor; out-of-grid
        // garbage (NaN/inf positions) maps to far-out-of-box integers,
        // which the block containment checks route to the scalar
        // fallback — so block results never diverge from the scalar
        // kernels.
        for l in 0..W {
            i0[l] = fa[l].index_i64();
        }
    }
}

/// Order-0 (nearest-grid-point) shape: the Galerkin reduction of linear.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ngp;

impl Shape for Ngp {
    const ORDER: usize = 0;
    const SUPPORT: usize = 1;
    type Lower = Ngp;

    #[inline(always)]
    fn eval_fp<T: Real>(xi: T) -> (T, [T; 4]) {
        ((xi + T::HALF).floor(), [T::ONE, T::ZERO, T::ZERO, T::ZERO])
    }
}

/// Order-1 (linear / cloud-in-cell) shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct Linear;

/// Order-2 (quadratic / triangular-shaped-cloud) shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct Quadratic;

/// Order-3 (cubic B-spline) shape — the production choice for
/// laser–solid interactions in the paper (§V-A: "order 3 interpolation
/// ... up to 64 sampling points per particle").
#[derive(Clone, Copy, Debug, Default)]
pub struct Cubic;

impl Shape for Linear {
    const ORDER: usize = 1;
    const SUPPORT: usize = 2;
    type Lower = Ngp;

    #[inline(always)]
    fn eval_fp<T: Real>(xi: T) -> (T, [T; 4]) {
        // `floor` stays in the FP domain so `d` does not wait on an
        // int round-trip; the index conversion runs off that chain.
        // Bitwise identical to `xi - from_f64(floor_i64(xi) as f64)`:
        // the floor value is exactly representable.
        let fi = xi.floor();
        let d = xi - fi;
        (fi, [T::ONE - d, d, T::ZERO, T::ZERO])
    }
}

impl Shape for Quadratic {
    const ORDER: usize = 2;
    const SUPPORT: usize = 3;
    type Lower = Linear;

    #[inline(always)]
    fn eval_fp<T: Real>(xi: T) -> (T, [T; 4]) {
        let fic = (xi + T::HALF).floor();
        let d = xi - fic; // in [-1/2, 1/2)
        let a = T::HALF - d;
        let b = T::HALF + d;
        (
            fic - T::ONE,
            [
                T::HALF * a * a,
                T::from_f64(0.75) - d * d,
                T::HALF * b * b,
                T::ZERO,
            ],
        )
    }
}

impl Shape for Cubic {
    const ORDER: usize = 3;
    const SUPPORT: usize = 4;
    type Lower = Quadratic;

    #[inline(always)]
    fn eval_fp<T: Real>(xi: T) -> (T, [T; 4]) {
        let fil = xi.floor();
        let d = xi - fil; // in [0, 1)
        let d2 = d * d;
        let d3 = d2 * d;
        let sixth = T::from_f64(1.0 / 6.0);
        let omd = T::ONE - d;
        (
            fil - T::ONE,
            [
                sixth * omd * omd * omd,
                sixth * (T::from_f64(3.0) * d3 - T::from_f64(6.0) * d2 + T::from_f64(4.0)),
                sixth
                    * (T::from_f64(-3.0) * d3
                        + T::from_f64(3.0) * d2
                        + T::from_f64(3.0) * d
                        + T::ONE),
                sixth * d3,
            ],
        )
    }
}

/// Old and new shape weights of a moving particle on a *common* index
/// window of `SUPPORT + 1` points (the particle moves less than one cell
/// per step under the CFL limit), as needed by the Esirkepov deposition.
///
/// Returns `(anchor, s_old, s_new)`; weights live in
/// `[0 .. S::SUPPORT + 1]` of the fixed-size arrays.
#[inline(always)]
pub fn dual<S: Shape, T: Real>(xi_old: T, xi_new: T) -> (i64, [T; 5], [T; 5]) {
    let (i0o, wo) = S::eval(xi_old);
    let (i0n, wn) = S::eval(xi_new);
    debug_assert!(
        (i0o - i0n).abs() <= 1,
        "particle moved more than one cell per step (CFL violation)"
    );
    let anchor = i0o.min(i0n);
    // Branchless window placement: each window sits at offset 0 or 1
    // from the anchor, so every padded slot is a select between a
    // weight and its left neighbour (`eval`'s zero tail supplies the
    // padding for orders below cubic). Same values as an offset copy,
    // but branch-free and in registers, so blocks of `dual` calls
    // vectorize across particles.
    let o0 = i0o == anchor;
    let n0 = i0n == anchor;
    let s0 = [
        sel(o0, wo[0], T::ZERO),
        sel(o0, wo[1], wo[0]),
        sel(o0, wo[2], wo[1]),
        sel(o0, wo[3], wo[2]),
        sel(o0, T::ZERO, wo[3]),
    ];
    let s1 = [
        sel(n0, wn[0], T::ZERO),
        sel(n0, wn[1], wn[0]),
        sel(n0, wn[2], wn[1]),
        sel(n0, wn[3], wn[2]),
        sel(n0, T::ZERO, wn[3]),
    ];
    (anchor, s0, s1)
}

#[inline(always)]
pub(crate) fn sel<T: Real>(c: bool, a: T, b: T) -> T {
    if c {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition<S: Shape>(xi: f64) {
        let (_, w) = S::eval::<f64>(xi);
        let sum: f64 = w.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-12,
            "order {} xi={xi}: {w:?}",
            S::ORDER
        );
        for v in &w[..S::SUPPORT] {
            assert!(*v >= -1e-15, "negative weight at xi={xi}: {w:?}");
        }
        for v in &w[S::SUPPORT..] {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn partition_of_unity_samples() {
        for i in 0..1000 {
            let xi = -5.0 + 10.0 * (i as f64) / 999.0;
            check_partition::<Linear>(xi);
            check_partition::<Quadratic>(xi);
            check_partition::<Cubic>(xi);
        }
    }

    #[test]
    fn ngp_picks_nearest() {
        let (i0, w) = Ngp::eval::<f64>(2.4);
        assert_eq!(i0, 2);
        assert_eq!(w[0], 1.0);
        let (i0, _) = Ngp::eval::<f64>(2.6);
        assert_eq!(i0, 3);
    }

    #[test]
    fn linear_exact_values() {
        let (i0, w) = Linear::eval::<f64>(2.25);
        assert_eq!(i0, 2);
        assert!((w[0] - 0.75).abs() < 1e-15 && (w[1] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn quadratic_symmetry_on_node() {
        // Particle exactly on a node: symmetric [1/8, 3/4, 1/8].
        let (i0, w) = Quadratic::eval::<f64>(3.0);
        assert_eq!(i0, 2);
        assert!((w[0] - 0.125).abs() < 1e-15);
        assert!((w[1] - 0.75).abs() < 1e-15);
        assert!((w[2] - 0.125).abs() < 1e-15);
    }

    #[test]
    fn cubic_symmetry_mid_cell() {
        // Particle at a cell center: [1/48, 23/48, 23/48, 1/48].
        let (i0, w) = Cubic::eval::<f64>(1.5);
        assert_eq!(i0, 0);
        assert!((w[0] - 1.0 / 48.0).abs() < 1e-15);
        assert!((w[1] - 23.0 / 48.0).abs() < 1e-15);
        assert!((w[2] - 23.0 / 48.0).abs() < 1e-15);
        assert!((w[3] - 1.0 / 48.0).abs() < 1e-15);
    }

    #[test]
    fn shapes_are_continuous() {
        // Sample the reconstructed shape function S(x) on a fine grid and
        // verify continuity across cell boundaries.
        fn recon<S: Shape>(xi: f64, node: i64) -> f64 {
            let (i0, w) = S::eval::<f64>(xi);
            let k = node - i0;
            if (0..S::SUPPORT as i64).contains(&k) {
                w[k as usize]
            } else {
                0.0
            }
        }
        for order_fn in [recon::<Quadratic> as fn(f64, i64) -> f64, recon::<Cubic>] {
            for e in [-1.0f64, 0.0, 1.0, 2.0] {
                let lo = order_fn(e - 1e-9, 1);
                let hi = order_fn(e + 1e-9, 1);
                assert!((lo - hi).abs() < 1e-6, "discontinuity at {e}");
            }
        }
    }

    #[test]
    fn dual_windows_align() {
        let (a, s0, s1) = dual::<Quadratic, f64>(2.3, 2.9);
        assert!((s0.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Old anchored at floor(2.3+0.5)-1 = 1, new at floor(2.9+.5)-1 = 2.
        assert_eq!(a, 1);
        assert_eq!(s1[0], 0.0); // new window shifted right by one
    }

    #[test]
    fn dual_identical_positions() {
        let (_, s0, s1) = dual::<Cubic, f64>(4.7, 4.7);
        assert_eq!(s0, s1);
    }
}
