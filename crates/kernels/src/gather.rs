//! Field gathering: interpolate staggered E and B onto particles.
//!
//! The *baseline* kernels loop particle-by-particle. The *blocked*
//! kernels implement the paper's A64FX optimization (§V-A.1): weights are
//! computed for groups of `NGRP` particles into transposed SoA
//! temporaries that stay in cache, and the innermost loops then run over
//! the particles of the group with the stencil offset fixed — "vectorizing
//! over p with ijk fixed" — instead of over the tiny stencil extents.

use crate::real::Real;
use crate::shape::Shape;
use crate::view::{FieldView, Geom};

/// Particle-group size for the blocked kernels. Must be large enough to
/// fill vector lanes yet keep the transposed temporaries cache-resident
/// (the paper suggests powers of two: 32, 64 or 128).
pub const NGRP: usize = 32;

/// Interpolate one staggered component at one particle (baseline path).
#[inline(always)]
fn interp_one<S: Shape, T: Real>(f: &FieldView<'_, T>, xi: [T; 3]) -> T {
    let (ix, wx) = S::eval(xi[0] - T::from_f64(f.off(0)));
    let (iy, wy) = S::eval(xi[1] - T::from_f64(f.off(1)));
    let (iz, wz) = S::eval(xi[2] - T::from_f64(f.off(2)));
    let mut acc = T::ZERO;
    for c in 0..S::SUPPORT {
        for b in 0..S::SUPPORT {
            let part = wz[c] * wy[b];
            for a in 0..S::SUPPORT {
                let v = f.get(ix + a as i64, iy + b as i64, iz + c as i64);
                acc = (part * wx[a]).mul_add(v, acc);
            }
        }
    }
    acc
}

/// 2-D (x–z) variant: the single y plane has weight one.
#[inline(always)]
fn interp_one_2d<S: Shape, T: Real>(f: &FieldView<'_, T>, xi_x: T, xi_z: T) -> T {
    let (ix, wx) = S::eval(xi_x - T::from_f64(f.off(0)));
    let (iz, wz) = S::eval(xi_z - T::from_f64(f.off(2)));
    let j = f.lo[1];
    let mut acc = T::ZERO;
    for c in 0..S::SUPPORT {
        for a in 0..S::SUPPORT {
            let v = f.get(ix + a as i64, j, iz + c as i64);
            acc = (wz[c] * wx[a]).mul_add(v, acc);
        }
    }
    acc
}

/// All six staggered components of one field set.
#[derive(Clone, Copy)]
pub struct EmViews<'a, T> {
    pub ex: FieldView<'a, T>,
    pub ey: FieldView<'a, T>,
    pub ez: FieldView<'a, T>,
    pub bx: FieldView<'a, T>,
    pub by: FieldView<'a, T>,
    pub bz: FieldView<'a, T>,
}

/// Gathered fields per particle (structure of arrays).
pub struct EmOut<'a, T> {
    pub ex: &'a mut [T],
    pub ey: &'a mut [T],
    pub ez: &'a mut [T],
    pub bx: &'a mut [T],
    pub by: &'a mut [T],
    pub bz: &'a mut [T],
}

/// Baseline 3-D gather: one particle at a time.
pub fn gather3<S: Shape, T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    geom: &Geom,
    f: &EmViews<'_, T>,
    out: &mut EmOut<'_, T>,
) {
    let n = x.len();
    assert!(y.len() == n && z.len() == n && out.ex.len() >= n);
    for p in 0..n {
        let xi = [geom.xi(0, x[p]), geom.xi(1, y[p]), geom.xi(2, z[p])];
        out.ex[p] = interp_one::<S, T>(&f.ex, xi);
        out.ey[p] = interp_one::<S, T>(&f.ey, xi);
        out.ez[p] = interp_one::<S, T>(&f.ez, xi);
        out.bx[p] = interp_one::<S, T>(&f.bx, xi);
        out.by[p] = interp_one::<S, T>(&f.by, xi);
        out.bz[p] = interp_one::<S, T>(&f.bz, xi);
    }
}

/// Baseline 2-D (x–z) gather.
pub fn gather2<S: Shape, T: Real>(
    x: &[T],
    z: &[T],
    geom: &Geom,
    f: &EmViews<'_, T>,
    out: &mut EmOut<'_, T>,
) {
    let n = x.len();
    assert!(z.len() == n && out.ex.len() >= n);
    for p in 0..n {
        let (xi, zi) = (geom.xi(0, x[p]), geom.xi(2, z[p]));
        out.ex[p] = interp_one_2d::<S, T>(&f.ex, xi, zi);
        out.ey[p] = interp_one_2d::<S, T>(&f.ey, xi, zi);
        out.ez[p] = interp_one_2d::<S, T>(&f.ez, xi, zi);
        out.bx[p] = interp_one_2d::<S, T>(&f.bx, xi, zi);
        out.by[p] = interp_one_2d::<S, T>(&f.by, xi, zi);
        out.bz[p] = interp_one_2d::<S, T>(&f.bz, xi, zi);
    }
}

/// Per-particle interpolation weights, both stagger variants per axis,
/// computed once and shared by all six components (the baseline
/// recomputes them per component: 18 shape evaluations vs 6).
struct DualWeights<T> {
    /// `w[axis][variant][k]`, variant 0 = nodal, 1 = half.
    w: [[[T; 4]; 2]; 3],
    i0: [[i64; 2]; 3],
}

impl<T: Real> DualWeights<T> {
    #[inline(always)]
    fn compute<S: Shape>(xi: [T; 3]) -> Self {
        let mut w = [[[T::ZERO; 4]; 2]; 3];
        let mut i0 = [[0i64; 2]; 3];
        for d in 0..3 {
            let (i_n, w_n) = S::eval(xi[d]);
            let (i_h, w_h) = S::eval(xi[d] - T::HALF);
            i0[d] = [i_n, i_h];
            w[d] = [w_n, w_h];
        }
        Self { w, i0 }
    }
}

/// Interpolate one component for one particle from precomputed weights,
/// with a contiguous (x-fastest) inner loop and unchecked loads.
///
/// # Safety contract
/// The caller guarantees the interpolation window lies inside the view's
/// storage (the driver's guard-cell sizing, `ngrow = order + 2`).
#[inline(always)]
fn interp_fast<S: Shape, T: Real>(f: &FieldView<'_, T>, dw: &DualWeights<T>) -> T {
    let hx = f.half[0] as usize;
    let hy = f.half[1] as usize;
    let hz = f.half[2] as usize;
    let wx = &dw.w[0][hx];
    let wy = &dw.w[1][hy];
    let wz = &dw.w[2][hz];
    let base = f.idx(dw.i0[0][hx], dw.i0[1][hy], dw.i0[2][hz]);
    debug_assert!(
        base + ((S::SUPPORT - 1) as i64 * (f.nxy + f.nx)) as usize + S::SUPPORT <= f.data.len()
    );
    let mut acc = T::ZERO;
    for c in 0..S::SUPPORT {
        for b in 0..S::SUPPORT {
            let part = wz[c] * wy[b];
            let row = base + (c as i64 * f.nxy + b as i64 * f.nx) as usize;
            // Contiguous unit-stride row: vectorizes without gathers.
            let mut racc = T::ZERO;
            for a in 0..S::SUPPORT {
                // SAFETY: window containment guaranteed by the caller
                // (guard reach), asserted above in debug builds.
                let v = unsafe { *f.data.get_unchecked(row + a) };
                racc = wx[a].mul_add(v, racc);
            }
            acc = part.mul_add(racc, acc);
        }
    }
    acc
}

/// Optimized 3-D gather (the §V-A.1 restructuring, retargeted at this
/// host ISA): interpolation weights are computed once per particle into
/// registers and shared across all six components, and the innermost
/// loops run over contiguous rows with fused multiply-adds — removing
/// the redundant per-component shape evaluations and the bounds checks
/// that dominate the baseline. Processes particles in groups of
/// [`NGRP`] to keep outputs streaming.
pub fn gather3_blocked<S: Shape, T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    geom: &Geom,
    f: &EmViews<'_, T>,
    out: &mut EmOut<'_, T>,
) {
    let n = x.len();
    assert!(y.len() == n && z.len() == n && out.ex.len() >= n);
    let mut start = 0usize;
    while start < n {
        let g = NGRP.min(n - start);
        for p in start..start + g {
            let xi = [geom.xi(0, x[p]), geom.xi(1, y[p]), geom.xi(2, z[p])];
            let dw = DualWeights::compute::<S>(xi);
            out.ex[p] = interp_fast::<S, T>(&f.ex, &dw);
            out.ey[p] = interp_fast::<S, T>(&f.ey, &dw);
            out.ez[p] = interp_fast::<S, T>(&f.ez, &dw);
            out.bx[p] = interp_fast::<S, T>(&f.bx, &dw);
            out.by[p] = interp_fast::<S, T>(&f.by, &dw);
            out.bz[p] = interp_fast::<S, T>(&f.bz, &dw);
        }
        start += g;
    }
}

/// Galerkin ("energy-conserving") 3-D gather: along each axis where a
/// component is staggered, the interpolation order is reduced by one
/// (evaluated at the half-shifted coordinate) — WarpX's default scheme,
/// which suppresses the self-force a macroparticle exerts on itself
/// through the staggered lattice.
pub fn gather3_galerkin<S: Shape, T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    geom: &Geom,
    f: &EmViews<'_, T>,
    out: &mut EmOut<'_, T>,
) {
    let n = x.len();
    assert!(y.len() == n && z.len() == n && out.ex.len() >= n);
    for p in 0..n {
        let xi = [geom.xi(0, x[p]), geom.xi(1, y[p]), geom.xi(2, z[p])];
        out.ex[p] = interp_one_galerkin::<S, T>(&f.ex, xi);
        out.ey[p] = interp_one_galerkin::<S, T>(&f.ey, xi);
        out.ez[p] = interp_one_galerkin::<S, T>(&f.ez, xi);
        out.bx[p] = interp_one_galerkin::<S, T>(&f.bx, xi);
        out.by[p] = interp_one_galerkin::<S, T>(&f.by, xi);
        out.bz[p] = interp_one_galerkin::<S, T>(&f.bz, xi);
    }
}

/// Per-axis weights at order `S` (nodal axes) or `S::Lower` shifted by
/// half (staggered axes).
#[inline(always)]
fn axis_weights_galerkin<S: Shape, T: Real>(xi: T, half: bool) -> (i64, [T; 4], usize) {
    if half {
        let (i0, w) = <S::Lower as Shape>::eval(xi - T::HALF);
        (i0, w, <S::Lower as Shape>::SUPPORT)
    } else {
        let (i0, w) = S::eval(xi);
        (i0, w, S::SUPPORT)
    }
}

#[inline(always)]
fn interp_one_galerkin<S: Shape, T: Real>(f: &FieldView<'_, T>, xi: [T; 3]) -> T {
    let (ix, wx, sx) = axis_weights_galerkin::<S, T>(xi[0], f.half[0]);
    let (iy, wy, sy) = axis_weights_galerkin::<S, T>(xi[1], f.half[1]);
    let (iz, wz, sz) = axis_weights_galerkin::<S, T>(xi[2], f.half[2]);
    let mut acc = T::ZERO;
    for c in 0..sz {
        for b in 0..sy {
            let part = wz[c] * wy[b];
            for a in 0..sx {
                acc += part * wx[a] * f.get(ix + a as i64, iy + b as i64, iz + c as i64);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{Cubic, Linear, Quadratic};

    /// Build a field view over an (nx, ny, nz)-point grid with values
    /// from `f(i, j, k)` and lower corner `lo`.
    fn mk_field(
        lo: [i64; 3],
        n: [i64; 3],
        half: [bool; 3],
        f: impl Fn(i64, i64, i64) -> f64,
    ) -> (Vec<f64>, [i64; 3], i64, i64, [bool; 3]) {
        let mut data = vec![0.0; (n[0] * n[1] * n[2]) as usize];
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    data[(k * n[1] * n[0] + j * n[0] + i) as usize] =
                        f(lo[0] + i, lo[1] + j, lo[2] + k);
                }
            }
        }
        (data, lo, n[0], n[0] * n[1], half)
    }

    fn view<'a>(t: &'a (Vec<f64>, [i64; 3], i64, i64, [bool; 3])) -> FieldView<'a, f64> {
        FieldView {
            data: &t.0,
            lo: t.1,
            nx: t.2,
            nxy: t.3,
            half: t.4,
        }
    }

    fn geom() -> Geom {
        Geom {
            xmin: [0.0, 0.0, 0.0],
            dx: [1.0, 1.0, 1.0],
        }
    }

    /// Gather of a *linear* function of position must be exact for any
    /// B-spline order (first-moment reproduction), including staggering.
    fn linear_exactness<S: Shape>() {
        let lo = [-4i64, -4, -4];
        let n = [16i64, 16, 16];
        let fx = |i: i64, j: i64, k: i64, half: [bool; 3]| {
            let x = i as f64 + if half[0] { 0.5 } else { 0.0 };
            let y = j as f64 + if half[1] { 0.5 } else { 0.0 };
            let z = k as f64 + if half[2] { 0.5 } else { 0.0 };
            2.0 * x - 3.0 * y + 0.5 * z + 1.0
        };
        let hex = [true, false, false]; // Ex: half x (as bool half flags)
        let hey = [false, true, false];
        let hez = [false, false, true];
        let hbx = [false, true, true];
        let hby = [true, false, true];
        let hbz = [true, true, false];
        let tex = mk_field(lo, n, hex, |i, j, k| fx(i, j, k, hex));
        let tey = mk_field(lo, n, hey, |i, j, k| fx(i, j, k, hey));
        let tez = mk_field(lo, n, hez, |i, j, k| fx(i, j, k, hez));
        let tbx = mk_field(lo, n, hbx, |i, j, k| fx(i, j, k, hbx));
        let tby = mk_field(lo, n, hby, |i, j, k| fx(i, j, k, hby));
        let tbz = mk_field(lo, n, hbz, |i, j, k| fx(i, j, k, hbz));
        let f = EmViews {
            ex: view(&tex),
            ey: view(&tey),
            ez: view(&tez),
            bx: view(&tbx),
            by: view(&tby),
            bz: view(&tbz),
        };
        let xs = vec![1.37, 2.0, 3.91];
        let ys = vec![0.5, 1.25, 2.75];
        let zs = vec![2.1, 0.0, 1.5];
        let mut o = (
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        );
        let mut out = EmOut {
            ex: &mut o.0,
            ey: &mut o.1,
            ez: &mut o.2,
            bx: &mut o.3,
            by: &mut o.4,
            bz: &mut o.5,
        };
        gather3::<S, f64>(&xs, &ys, &zs, &geom(), &f, &mut out);
        for p in 0..3 {
            let want = 2.0 * xs[p] - 3.0 * ys[p] + 0.5 * zs[p] + 1.0;
            for got in [o.0[p], o.1[p], o.2[p], o.3[p], o.4[p], o.5[p]] {
                assert!(
                    (got - want).abs() < 1e-10,
                    "order {}: got {got}, want {want}",
                    S::ORDER
                );
            }
        }
    }

    #[test]
    fn linear_function_exact_all_orders() {
        linear_exactness::<Linear>();
        linear_exactness::<Quadratic>();
        linear_exactness::<Cubic>();
    }

    #[test]
    fn blocked_matches_baseline_closely() {
        let lo = [-4i64, -4, -4];
        let n = [24i64, 20, 22];
        let mk = |half: [bool; 3], seed: f64| {
            mk_field(lo, n, half, move |i, j, k| {
                ((i * 31 + j * 17 + k * 7) as f64 * seed).sin()
            })
        };
        let tex = mk([true, false, false], 0.1);
        let tey = mk([false, true, false], 0.2);
        let tez = mk([false, false, true], 0.3);
        let tbx = mk([false, true, true], 0.4);
        let tby = mk([true, false, true], 0.5);
        let tbz = mk([true, true, false], 0.6);
        let f = EmViews {
            ex: view(&tex),
            ey: view(&tey),
            ez: view(&tez),
            bx: view(&tbx),
            by: view(&tby),
            bz: view(&tbz),
        };
        // 100 pseudo-random particles inside the safe interior.
        let np = 100;
        let mut xs = vec![0.0; np];
        let mut ys = vec![0.0; np];
        let mut zs = vec![0.0; np];
        let mut state = 12345u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for p in 0..np {
            xs[p] = -1.0 + 10.0 * rng();
            ys[p] = -1.0 + 8.0 * rng();
            zs[p] = -1.0 + 9.0 * rng();
        }
        let run = |blocked: bool| {
            let mut o = (
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
            );
            {
                let mut out = EmOut {
                    ex: &mut o.0,
                    ey: &mut o.1,
                    ez: &mut o.2,
                    bx: &mut o.3,
                    by: &mut o.4,
                    bz: &mut o.5,
                };
                if blocked {
                    gather3_blocked::<Cubic, f64>(&xs, &ys, &zs, &geom(), &f, &mut out);
                } else {
                    gather3::<Cubic, f64>(&xs, &ys, &zs, &geom(), &f, &mut out);
                }
            }
            o
        };
        let a = run(false);
        let b = run(true);
        // The optimized kernel reassociates the row sums; results agree
        // to a few ulps.
        for p in 0..np {
            for (x, y) in [(&a.0, &b.0), (&a.3, &b.3), (&a.5, &b.5)] {
                let scale = x[p].abs().max(1e-30);
                assert!(
                    (x[p] - y[p]).abs() <= 1e-12 * scale,
                    "particle {p}: {} vs {}",
                    x[p],
                    y[p]
                );
            }
        }
    }

    #[test]
    fn gather2_matches_uniform_field() {
        let lo = [-4i64, 0, -4];
        let n = [16i64, 1, 16];
        let mk = |half: [bool; 3]| mk_field(lo, n, half, |_, _, _| 7.0);
        let tex = mk([true, false, false]);
        let tey = mk([false, false, false]);
        let tez = mk([false, false, true]);
        let tbx = mk([false, false, true]);
        let tby = mk([true, false, true]);
        let tbz = mk([true, false, false]);
        let f = EmViews {
            ex: view(&tex),
            ey: view(&tey),
            ez: view(&tez),
            bx: view(&tbx),
            by: view(&tby),
            bz: view(&tbz),
        };
        let xs = vec![0.3, 4.9];
        let zs = vec![1.1, 2.7];
        let mut o = (
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
        );
        let mut out = EmOut {
            ex: &mut o.0,
            ey: &mut o.1,
            ez: &mut o.2,
            bx: &mut o.3,
            by: &mut o.4,
            bz: &mut o.5,
        };
        gather2::<Quadratic, f64>(&xs, &zs, &geom(), &f, &mut out);
        for p in 0..2 {
            for got in [o.0[p], o.1[p], o.2[p], o.3[p], o.4[p], o.5[p]] {
                assert!((got - 7.0).abs() < 1e-12);
            }
        }
    }
}

#[cfg(test)]
mod galerkin_tests {
    use super::*;
    use crate::shape::{Cubic, Quadratic};

    fn geom() -> Geom {
        Geom {
            xmin: [0.0; 3],
            dx: [1.0; 3],
        }
    }

    /// Uniform fields gather exactly at any order (partition of unity of
    /// both the full and the reduced shapes).
    #[test]
    fn galerkin_uniform_field_exact() {
        let n = [12i64, 12, 12];
        let data = vec![5.0; (n[0] * n[1] * n[2]) as usize];
        let mk = |half: [bool; 3]| FieldView {
            data: data.as_slice(),
            lo: [-4, -4, -4],
            nx: n[0],
            nxy: n[0] * n[1],
            half,
        };
        let f = EmViews {
            ex: mk([true, false, false]),
            ey: mk([false, true, false]),
            ez: mk([false, false, true]),
            bx: mk([false, true, true]),
            by: mk([true, false, true]),
            bz: mk([true, true, false]),
        };
        let (xs, ys, zs) = (vec![1.3, 2.8], vec![0.4, 1.9], vec![2.2, 0.7]);
        let mut o = (
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
            vec![0.0; 2],
        );
        let mut out = EmOut {
            ex: &mut o.0,
            ey: &mut o.1,
            ez: &mut o.2,
            bx: &mut o.3,
            by: &mut o.4,
            bz: &mut o.5,
        };
        gather3_galerkin::<Quadratic, f64>(&xs, &ys, &zs, &geom(), &f, &mut out);
        for p in 0..2 {
            for got in [o.0[p], o.1[p], o.2[p], o.3[p], o.4[p], o.5[p]] {
                assert!((got - 5.0).abs() < 1e-12, "{got}");
            }
        }
    }

    /// For orders >= 2 the reduced shape is still >= linear, so linear
    /// fields are reproduced exactly.
    #[test]
    fn galerkin_linear_field_exact_for_high_order() {
        let lo = [-4i64, -4, -4];
        let n = [16i64, 16, 16];
        let half = [true, false, false]; // Ex
        let mut data = vec![0.0; (n[0] * n[1] * n[2]) as usize];
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    let x = (lo[0] + i) as f64 + 0.5; // half in x
                    let y = (lo[1] + j) as f64;
                    let z = (lo[2] + k) as f64;
                    data[(k * n[1] * n[0] + j * n[0] + i) as usize] = 2.0 * x - y + 0.25 * z;
                }
            }
        }
        let v = FieldView {
            data: data.as_slice(),
            lo,
            nx: n[0],
            nxy: n[0] * n[1],
            half,
        };
        for &(xp, yp, zp) in &[(1.37, 0.5, 2.1), (3.0, 2.25, 0.8)] {
            let xi = [xp, yp, zp];
            let got = super::interp_one_galerkin::<Cubic, f64>(&v, xi);
            let want = 2.0 * xp - yp + 0.25 * zp;
            assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
        }
    }

    /// The defining Galerkin property: a static particle's own deposited
    /// field exerts (almost) no self-force through the staggering. We
    /// check the weaker invariant accessible at kernel level: the reduced
    /// order along the staggered axis matches order-(n-1) interpolation.
    #[test]
    fn galerkin_reduces_order_on_staggered_axis() {
        let lo = [-4i64, -4, -4];
        let n = [16i64, 12, 12];
        // Quadratic variation along x only: order-1 interpolation cannot
        // reproduce it, order-2 can; Galerkin must show the order-1
        // (linear) behavior along the staggered axis.
        let mut data = vec![0.0; (n[0] * n[1] * n[2]) as usize];
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    let x = (lo[0] + i) as f64 + 0.5;
                    data[(k * n[1] * n[0] + j * n[0] + i) as usize] = x * x;
                }
            }
        }
        let v = FieldView {
            data: data.as_slice(),
            lo,
            nx: n[0],
            nxy: n[0] * n[1],
            half: [true, false, false],
        };
        // At a point midway between two staggered samples, linear interp
        // gives the average of the neighbors, not the exact parabola.
        let xi = [2.0, 1.0, 1.0]; // between x samples at 1.5 and 2.5
        let got = super::interp_one_galerkin::<Quadratic, f64>(&v, xi);
        let linear_expected = 0.5 * (1.5f64 * 1.5 + 2.5 * 2.5);
        assert!((got - linear_expected).abs() < 1e-12, "{got}");
    }
}

/// Optimized 2-D (x–z) gather: per-particle weights computed once for
/// both stagger variants and shared across components; contiguous
/// unchecked row loads (same restructuring as [`gather3_blocked`]).
pub fn gather2_blocked<S: Shape, T: Real>(
    x: &[T],
    z: &[T],
    geom: &Geom,
    f: &EmViews<'_, T>,
    out: &mut EmOut<'_, T>,
) {
    let n = x.len();
    assert!(z.len() == n && out.ex.len() >= n);
    for p in 0..n {
        let xi_x = geom.xi(0, x[p]);
        let xi_z = geom.xi(2, z[p]);
        let (ixn, wxn) = S::eval(xi_x);
        let (ixh, wxh) = S::eval(xi_x - T::HALF);
        let (izn, wzn) = S::eval(xi_z);
        let (izh, wzh) = S::eval(xi_z - T::HALF);
        fn pick<'a, T>(
            half: bool,
            n_: (i64, &'a [T; 4]),
            h: (i64, &'a [T; 4]),
        ) -> (i64, &'a [T; 4]) {
            if half {
                h
            } else {
                n_
            }
        }
        let comp = |f: &FieldView<'_, T>| -> T {
            let (ix, wx) = pick(f.half[0], (ixn, &wxn), (ixh, &wxh));
            let (iz, wz) = pick(f.half[2], (izn, &wzn), (izh, &wzh));
            let base = f.idx(ix, f.lo[1], iz);
            debug_assert!(
                base + ((S::SUPPORT - 1) as i64 * f.nxy) as usize + S::SUPPORT <= f.data.len()
            );
            let mut acc = T::ZERO;
            for c in 0..S::SUPPORT {
                let row = base + (c as i64 * f.nxy) as usize;
                let mut racc = T::ZERO;
                for a in 0..S::SUPPORT {
                    // SAFETY: guard-reach contract, debug-asserted above.
                    let v = unsafe { *f.data.get_unchecked(row + a) };
                    racc = wx[a].mul_add(v, racc);
                }
                acc = wz[c].mul_add(racc, acc);
            }
            acc
        };
        out.ex[p] = comp(&f.ex);
        out.ey[p] = comp(&f.ey);
        out.ez[p] = comp(&f.ez);
        out.bx[p] = comp(&f.bx);
        out.by[p] = comp(&f.by);
        out.bz[p] = comp(&f.bz);
    }
}

#[cfg(test)]
mod blocked2_tests {
    use super::*;
    use crate::shape::Quadratic;

    #[test]
    fn gather2_blocked_matches_baseline() {
        let lo = [-4i64, 0, -4];
        let n = [24i64, 1, 20];
        let mk = |seed: f64| {
            let mut data = vec![0.0; (n[0] * n[1] * n[2]) as usize];
            for k in 0..n[2] {
                for i in 0..n[0] {
                    data[(k * n[0] + i) as usize] = ((i * 31 + k * 7) as f64 * seed).sin();
                }
            }
            data
        };
        let d: Vec<Vec<f64>> = (0..6).map(|c| mk(0.1 * (c + 1) as f64)).collect();
        let halves = [
            [true, false, false],
            [false, false, false],
            [false, false, true],
            [false, false, true],
            [true, false, true],
            [true, false, false],
        ];
        let view = |i: usize| FieldView {
            data: d[i].as_slice(),
            lo,
            nx: n[0],
            nxy: n[0] * n[1],
            half: halves[i],
        };
        let f = EmViews {
            ex: view(0),
            ey: view(1),
            ez: view(2),
            bx: view(3),
            by: view(4),
            bz: view(5),
        };
        let geom = Geom {
            xmin: [0.0; 3],
            dx: [1.0; 3],
        };
        let xs = vec![0.3, 5.7, 11.9, 2.0];
        let zs = vec![1.1, 8.4, 0.0, 7.5];
        let run = |blocked: bool| {
            let np = xs.len();
            let mut o = (
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
                vec![0.0; np],
            );
            {
                let mut out = EmOut {
                    ex: &mut o.0,
                    ey: &mut o.1,
                    ez: &mut o.2,
                    bx: &mut o.3,
                    by: &mut o.4,
                    bz: &mut o.5,
                };
                if blocked {
                    gather2_blocked::<Quadratic, f64>(&xs, &zs, &geom, &f, &mut out);
                } else {
                    gather2::<Quadratic, f64>(&xs, &zs, &geom, &f, &mut out);
                }
            }
            o
        };
        let a = run(false);
        let b = run(true);
        for p in 0..xs.len() {
            for (x, y) in [(&a.0, &b.0), (&a.1, &b.1), (&a.4, &b.4)] {
                assert!(
                    (x[p] - y[p]).abs() <= 1e-12 * x[p].abs().max(1e-30),
                    "particle {p}: {} vs {}",
                    x[p],
                    y[p]
                );
            }
        }
    }
}
