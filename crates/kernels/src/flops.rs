//! Audited flop/byte counts of the PIC kernels.
//!
//! The cluster simulator prices a PIC step on a device with a roofline
//! model `t = max(flops / peak_flops, bytes / bandwidth)`. These counts
//! are derived by auditing the kernel inner loops in this crate (the role
//! Nsight Compute / rocprof / fapp play in §VI-B of the paper). They are
//! per *particle* per step for particle kernels and per *cell* per step
//! for the field solver.
//!
//! Byte counts are *algorithmic* traffic (loads + stores assuming no
//! cache reuse within a stencil); the machine model applies a reuse
//! factor for sorted particles, mirroring how measured DRAM traffic sits
//! below algorithmic traffic on real devices.

/// Costs of one PIC step per particle / per cell, in flops and bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCosts {
    pub gather_flops: f64,
    pub gather_bytes: f64,
    pub deposit_flops: f64,
    pub deposit_bytes: f64,
    pub push_flops: f64,
    pub push_bytes: f64,
    /// Maxwell FDTD update, per cell (both half B steps + E step).
    pub field_flops_per_cell: f64,
    pub field_bytes_per_cell: f64,
}

/// Flops of one shape-factor evaluation by order (audit of `shape.rs`).
fn shape_eval_flops(order: usize) -> f64 {
    match order {
        1 => 3.0,  // floor, sub, 1-d
        2 => 10.0, // floor, sub, 2 add/sub, 4 mul, squares
        3 => 22.0, // floor, sub, d2, d3, 3 cubic polynomials
        _ => panic!("unsupported order {order}"),
    }
}

/// Which kernel implementation a cost model describes. The arithmetic
/// differs: the scalar reference kernels re-evaluate the shape weights
/// inside every component's interpolation (6 components × `dim` evals
/// per particle), while the blocked/lane-blocked kernels stage both
/// stagger variants once per particle (2 × `dim` evals) and reuse them
/// across all six components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelVariant {
    Scalar,
    LaneBlocked,
}

impl KernelCosts {
    /// Costs for shape `order` in `dim` (2 or 3) dimensions, with `wsize`
    /// bytes per scalar (8 = DP, 4 = SP). Models the blocked/lane-blocked
    /// kernels (the production path); see [`KernelCosts::for_variant`].
    pub fn for_order(order: usize, dim: usize, wsize: f64) -> Self {
        Self::for_variant(order, dim, wsize, KernelVariant::LaneBlocked)
    }

    /// Costs for a specific kernel implementation variant.
    pub fn for_variant(order: usize, dim: usize, wsize: f64, variant: KernelVariant) -> Self {
        assert!(matches!(dim, 2 | 3));
        assert!((1..=3).contains(&order));
        let s = (order + 1) as f64; // support points per axis
        let sten = if dim == 3 { s * s * s } else { s * s };
        // Gather: shape evals (see `KernelVariant`), then 6 components x
        // stencil x (3 mul + 1 add).
        let evals = match variant {
            KernelVariant::Scalar => 6.0 * dim as f64,
            KernelVariant::LaneBlocked => 2.0 * dim as f64,
        };
        let gather_flops = evals * shape_eval_flops(order) + 6.0 * sten * 4.0;
        // Field loads: 6 components x stencil points; weights reused from
        // registers; output 6 stores.
        let gather_bytes = (6.0 * sten + 6.0) * wsize + 3.0 * wsize; // + positions
                                                                     // Esirkepov: 2 evals per axis, DS, then dim sweeps of
                                                                     // (s+1)^(dim-1) * s inner updates with ~5 flops each plus the
                                                                     // out-of-plane direct deposit in 2-D.
        let w = s + 1.0;
        let sweeps = if dim == 3 {
            3.0 * w * w * (w - 1.0)
        } else {
            2.0 * w * (w - 1.0) + w * w
        };
        let deposit_flops = 2.0 * dim as f64 * shape_eval_flops(order) + sweeps * 5.0;
        // Read-modify-write on every touched current point (3 comps).
        let deposit_points = if dim == 3 {
            3.0 * w * w * w
        } else {
            3.0 * w * w
        };
        let deposit_bytes = deposit_points * 2.0 * wsize + 6.0 * wsize;
        // Boris: ~47 arithmetic + sqrt(~8) ~= 55; position push ~12.
        let push_flops = 55.0 + 12.0;
        let push_bytes = 12.0 * wsize; // u in/out, E, B from gather buffers
                                       // FDTD: E update 3 x (4 diffs/mults + J term) ~= 24, B ~= 18 over
                                       // two half steps.
        let field_flops_per_cell = 42.0;
        // E(3) + B(3) + J(3) loads, E(3) + B(3) stores.
        let field_bytes_per_cell = 15.0 * wsize;
        Self {
            gather_flops,
            gather_bytes,
            deposit_flops,
            deposit_bytes,
            push_flops,
            push_bytes,
            field_flops_per_cell,
            field_bytes_per_cell,
        }
    }

    /// Total flops of one step for `np` particles and `nc` cells.
    pub fn step_flops(&self, np: f64, nc: f64) -> f64 {
        np * (self.gather_flops + self.deposit_flops + self.push_flops)
            + nc * self.field_flops_per_cell
    }

    /// Total bytes of one step, with a cache-reuse factor in (0, 1]
    /// applied to particle-kernel grid traffic (sorted particles hit the
    /// same stencil repeatedly).
    pub fn step_bytes(&self, np: f64, nc: f64, reuse: f64) -> f64 {
        assert!(reuse > 0.0 && reuse <= 1.0);
        np * (self.gather_bytes + self.deposit_bytes) * reuse
            + np * self.push_bytes
            + nc * self.field_bytes_per_cell
    }

    /// Arithmetic intensity (flops/byte) of a full step.
    pub fn intensity(&self, np: f64, nc: f64, reuse: f64) -> f64 {
        self.step_flops(np, nc) / self.step_bytes(np, nc, reuse)
    }

    /// Arithmetic intensity (flops/byte) of the gather kernel alone.
    pub fn gather_intensity(&self) -> f64 {
        self.gather_flops / self.gather_bytes
    }

    /// Arithmetic intensity (flops/byte) of the deposit kernel alone.
    pub fn deposit_intensity(&self) -> f64 {
        self.deposit_flops / self.deposit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_order_costs_more() {
        for dim in [2, 3] {
            let c1 = KernelCosts::for_order(1, dim, 8.0);
            let c2 = KernelCosts::for_order(2, dim, 8.0);
            let c3 = KernelCosts::for_order(3, dim, 8.0);
            assert!(c1.gather_flops < c2.gather_flops);
            assert!(c2.gather_flops < c3.gather_flops);
            assert!(c1.deposit_bytes < c3.deposit_bytes);
        }
    }

    #[test]
    fn order3_3d_is_64_point_stencil() {
        // Paper §V-A: "order 3 ... up to 64 sampling points per particle".
        let c = KernelCosts::for_order(3, 3, 8.0);
        // 6 components x 64 points x 4 flops dominates the gather count.
        assert!(c.gather_flops > 6.0 * 64.0 * 4.0);
    }

    #[test]
    fn pic_is_memory_bound() {
        // Arithmetic intensity must be low (a few flops/byte), which is
        // why the paper benchmarks against HPCG rather than HPL.
        let c = KernelCosts::for_order(3, 3, 8.0);
        let ai = c.intensity(2.0, 1.0, 0.3); // 2 particles per cell
        assert!(ai > 0.5 && ai < 20.0, "intensity {ai}");
    }

    #[test]
    fn sp_halves_bytes_not_flops() {
        let dp = KernelCosts::for_order(2, 3, 8.0);
        let sp = KernelCosts::for_order(2, 3, 4.0);
        assert_eq!(dp.gather_flops, sp.gather_flops);
        assert!((dp.gather_bytes / sp.gather_bytes - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variants_differ_only_in_shape_evals() {
        for dim in [2, 3] {
            for order in 1..=3 {
                let lane = KernelCosts::for_variant(order, dim, 8.0, KernelVariant::LaneBlocked);
                let scalar = KernelCosts::for_variant(order, dim, 8.0, KernelVariant::Scalar);
                // for_order models the production (lane-blocked) path.
                assert_eq!(lane, KernelCosts::for_order(order, dim, 8.0));
                // Scalar re-evaluates weights per component: 4 extra
                // evals per axis, identical bytes.
                assert!(scalar.gather_flops > lane.gather_flops);
                assert_eq!(scalar.gather_bytes, lane.gather_bytes);
                assert!(scalar.gather_intensity() > lane.gather_intensity());
                assert!(lane.deposit_intensity() > 0.0);
            }
        }
    }

    #[test]
    fn step_totals_scale_linearly() {
        let c = KernelCosts::for_order(2, 3, 8.0);
        assert_eq!(c.step_flops(200.0, 100.0), 2.0 * c.step_flops(100.0, 50.0));
        assert!(c.step_bytes(100.0, 50.0, 0.5) < c.step_bytes(100.0, 50.0, 1.0));
    }
}
