//! Relativistic particle pushers.
//!
//! The standard leapfrog **Boris** rotation (the paper's recipe element
//! (ii)) and the **Vay** pusher, which preserves the E×B drift exactly
//! and is preferred for relativistic beams. The velocity variable is
//! `u = gamma * v` \[m/s\]; `gamma = sqrt(1 + u²/c²)`.

use crate::constants::C2;
use crate::real::Real;

/// Lorentz factor from u = gamma*v.
#[inline(always)]
pub fn gamma_of_u<T: Real>(ux: T, uy: T, uz: T) -> T {
    let inv_c2 = T::from_f64(1.0 / C2);
    (T::ONE + (ux * ux + uy * uy + uz * uz) * inv_c2).sqrt()
}

/// Advance `u` by one full step with the Boris scheme.
///
/// `qmdt2 = q dt / (2 m)`. Fields are at the particle position at the
/// (integer) time level around which the half-kicks are centered.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn boris_one<T: Real>(
    ux: &mut T,
    uy: &mut T,
    uz: &mut T,
    ex: T,
    ey: T,
    ez: T,
    bx: T,
    by: T,
    bz: T,
    qmdt2: T,
) {
    // Half electric kick.
    let umx = *ux + qmdt2 * ex;
    let umy = *uy + qmdt2 * ey;
    let umz = *uz + qmdt2 * ez;
    // Magnetic rotation.
    let inv_gamma = T::ONE / gamma_of_u(umx, umy, umz);
    let tx = qmdt2 * bx * inv_gamma;
    let ty = qmdt2 * by * inv_gamma;
    let tz = qmdt2 * bz * inv_gamma;
    let t2 = tx * tx + ty * ty + tz * tz;
    let upx = umx + (umy * tz - umz * ty);
    let upy = umy + (umz * tx - umx * tz);
    let upz = umz + (umx * ty - umy * tx);
    let s = T::from_f64(2.0) / (T::ONE + t2);
    let uprx = umx + (upy * tz - upz * ty) * s;
    let upry = umy + (upz * tx - upx * tz) * s;
    let uprz = umz + (upx * ty - upy * tx) * s;
    // Second half electric kick.
    *ux = uprx + qmdt2 * ex;
    *uy = upry + qmdt2 * ey;
    *uz = uprz + qmdt2 * ez;
}

/// Advance `u` by one full step with the Vay (2008) scheme.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn vay_one<T: Real>(
    ux: &mut T,
    uy: &mut T,
    uz: &mut T,
    ex: T,
    ey: T,
    ez: T,
    bx: T,
    by: T,
    bz: T,
    qmdt2: T,
) {
    let inv_c2 = T::from_f64(1.0 / C2);
    // v^n from u^n.
    let g0 = gamma_of_u(*ux, *uy, *uz);
    let (vx, vy, vz) = (*ux / g0, *uy / g0, *uz / g0);
    // u' = u^n + (q dt / m)(E + v^n x B / 2)  [two half-kicks fused]
    let upx = *ux + T::from_f64(2.0) * qmdt2 * ex + qmdt2 * (vy * bz - vz * by);
    let upy = *uy + T::from_f64(2.0) * qmdt2 * ey + qmdt2 * (vz * bx - vx * bz);
    let upz = *uz + T::from_f64(2.0) * qmdt2 * ez + qmdt2 * (vx * by - vy * bx);
    let taux = qmdt2 * bx;
    let tauy = qmdt2 * by;
    let tauz = qmdt2 * bz;
    let tau2 = taux * taux + tauy * tauy + tauz * tauz;
    let gp2 = T::ONE + (upx * upx + upy * upy + upz * upz) * inv_c2;
    let ustar = (upx * taux + upy * tauy + upz * tauz) * T::from_f64(1.0 / C2.sqrt());
    let sigma = gp2 - tau2;
    let g1 = ((sigma + (sigma * sigma + T::from_f64(4.0) * (tau2 + ustar * ustar)).sqrt())
        * T::HALF)
        .sqrt();
    let tx = taux / g1;
    let ty = tauy / g1;
    let tz = tauz / g1;
    let s = T::ONE / (T::ONE + tx * tx + ty * ty + tz * tz);
    let udt = upx * tx + upy * ty + upz * tz;
    *ux = s * (upx + udt * tx + (upy * tz - upz * ty));
    *uy = s * (upy + udt * ty + (upz * tx - upx * tz));
    *uz = s * (upz + udt * tz + (upx * ty - upy * tx));
}

/// Which momentum pusher to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Pusher {
    #[default]
    Boris,
    Vay,
}

/// Advance all particle momenta one step with the chosen pusher.
#[allow(clippy::too_many_arguments)]
pub fn push_momentum<T: Real>(
    pusher: Pusher,
    ux: &mut [T],
    uy: &mut [T],
    uz: &mut [T],
    ex: &[T],
    ey: &[T],
    ez: &[T],
    bx: &[T],
    by: &[T],
    bz: &[T],
    qmdt2: T,
) {
    let n = ux.len();
    match pusher {
        Pusher::Boris => {
            for p in 0..n {
                boris_one(
                    &mut ux[p], &mut uy[p], &mut uz[p], ex[p], ey[p], ez[p], bx[p], by[p], bz[p],
                    qmdt2,
                );
            }
        }
        Pusher::Vay => {
            for p in 0..n {
                vay_one(
                    &mut ux[p], &mut uy[p], &mut uz[p], ex[p], ey[p], ez[p], bx[p], by[p], bz[p],
                    qmdt2,
                );
            }
        }
    }
}

/// Advance positions with the half-step momenta: `x += u/gamma * dt`.
pub fn push_position<T: Real>(
    x: &mut [T],
    y: &mut [T],
    z: &mut [T],
    ux: &[T],
    uy: &[T],
    uz: &[T],
    dt: T,
) {
    for p in 0..x.len() {
        let inv_g = T::ONE / gamma_of_u(ux[p], uy[p], uz[p]);
        x[p] += ux[p] * inv_g * dt;
        y[p] += uy[p] * inv_g * dt;
        z[p] += uz[p] * inv_g * dt;
    }
}

/// 2-D variant: y is not advanced (out-of-plane).
pub fn push_position2<T: Real>(x: &mut [T], z: &mut [T], ux: &[T], uy: &[T], uz: &[T], dt: T) {
    for p in 0..x.len() {
        let inv_g = T::ONE / gamma_of_u(ux[p], uy[p], uz[p]);
        x[p] += ux[p] * inv_g * dt;
        z[p] += uz[p] * inv_g * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{C, M_E, Q_E};

    #[test]
    fn pure_b_field_preserves_energy() {
        // |u| is exactly invariant under the Boris rotation.
        let (mut ux, mut uy, mut uz) = (1.0e8, 2.0e7, -5.0e6);
        let u0 = (ux * ux + uy * uy + uz * uz).sqrt();
        let qmdt2 = -Q_E / M_E * 1e-15 / 2.0;
        for _ in 0..1000 {
            boris_one(
                &mut ux, &mut uy, &mut uz, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, qmdt2,
            );
        }
        let u1 = (ux * ux + uy * uy + uz * uz).sqrt();
        assert!((u1 - u0).abs() < 1e-6 * u0);
    }

    #[test]
    fn gyro_frequency_matches_analytic() {
        // Non-relativistic electron in Bz: angular frequency qB/m.
        let b = 10.0; // tesla
        let wc = Q_E * b / M_E;
        let dt = 0.002 / wc;
        let qmdt2 = -Q_E / M_E * dt / 2.0;
        let v0 = 1.0e5; // << c, non-relativistic
        let (mut ux, mut uy, mut uz) = (v0, 0.0, 0.0);
        // Advance for a quarter period: ux should become ~0, |uy| ~ v0.
        let quarter = (std::f64::consts::FRAC_PI_2 / (wc * dt)).round() as usize;
        for _ in 0..quarter {
            boris_one(&mut ux, &mut uy, &mut uz, 0.0, 0.0, 0.0, 0.0, 0.0, b, qmdt2);
        }
        assert!(ux.abs() < 0.02 * v0, "ux = {ux}");
        assert!((uy.abs() - v0).abs() < 0.02 * v0, "uy = {uy}");
        assert_eq!(uz, 0.0);
    }

    #[test]
    fn e_field_acceleration_momentum_gain() {
        // du/dt = qE/m exactly (E only).
        let e = 1.0e12;
        let dt = 1.0e-16;
        let steps = 500;
        let qmdt2 = -Q_E / M_E * dt / 2.0;
        let (mut ux, mut uy, mut uz) = (0.0, 0.0, 0.0);
        for _ in 0..steps {
            boris_one(&mut ux, &mut uy, &mut uz, e, 0.0, 0.0, 0.0, 0.0, 0.0, qmdt2);
        }
        let want = -Q_E / M_E * e * dt * steps as f64;
        assert!((ux - want).abs() < 1e-9 * want.abs());
        // Relativistic: u can exceed c, v cannot.
        let g = gamma_of_u(ux, uy, uz);
        assert!(ux.abs() / g < C);
    }

    #[test]
    fn vay_exact_exb_drift() {
        // Crossed fields E = (0, E, 0), B = (0, 0, B) with v = E/B x̂:
        // the Lorentz force vanishes; Vay preserves the drift exactly.
        let b = 5.0;
        let vd = 0.1 * C;
        let e = vd * b;
        let g = 1.0 / (1.0 - (vd / C).powi(2)).sqrt();
        let (mut ux, mut uy, mut uz) = (g * vd, 0.0, 0.0);
        let dt = 1.0e-13;
        let qmdt2 = -Q_E / M_E * dt / 2.0;
        for _ in 0..100 {
            vay_one(&mut ux, &mut uy, &mut uz, 0.0, -e, 0.0, 0.0, 0.0, -b, qmdt2);
        }
        // Force balance: q(E + v x B) = 0 for v = E/B in x.
        assert!((ux - g * vd).abs() < 1e-8 * g * vd, "ux drifted: {ux}");
        assert!(uy.abs() < 1e-6 * g * vd, "uy = {uy}");
    }

    #[test]
    fn vay_agrees_with_boris_weak_fields() {
        let dt = 1.0e-17;
        let qmdt2 = -Q_E / M_E * dt / 2.0;
        let fields = (1.0e9, -2.0e9, 0.5e9, 0.3, -0.2, 0.8);
        let (mut b_u, mut v_u) = ((1.0e7, 2.0e7, 3.0e7), (1.0e7, 2.0e7, 3.0e7));
        for _ in 0..10 {
            boris_one(
                &mut b_u.0, &mut b_u.1, &mut b_u.2, fields.0, fields.1, fields.2, fields.3,
                fields.4, fields.5, qmdt2,
            );
            vay_one(
                &mut v_u.0, &mut v_u.1, &mut v_u.2, fields.0, fields.1, fields.2, fields.3,
                fields.4, fields.5, qmdt2,
            );
        }
        let scale = (b_u.0 * b_u.0 + b_u.1 * b_u.1 + b_u.2 * b_u.2).sqrt();
        assert!((b_u.0 - v_u.0).abs() < 1e-6 * scale);
        assert!((b_u.1 - v_u.1).abs() < 1e-6 * scale);
        assert!((b_u.2 - v_u.2).abs() < 1e-6 * scale);
    }

    #[test]
    fn position_push_respects_gamma() {
        let c95 = 0.95 * C;
        let g = 1.0 / (1.0 - 0.95f64.powi(2)).sqrt();
        let mut x = vec![0.0];
        let mut y = vec![0.0];
        let mut z = vec![0.0];
        let ux = vec![g * c95];
        let (uy, uz) = (vec![0.0], vec![0.0]);
        push_position(&mut x, &mut y, &mut z, &ux, &uy, &uz, 1.0e-15);
        assert!((x[0] - c95 * 1.0e-15).abs() < 1e-9 * x[0].abs());
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn single_precision_pusher_runs() {
        let (mut ux, mut uy, mut uz) = (1.0e7f32, 0.0, 0.0);
        boris_one(
            &mut ux, &mut uy, &mut uz, 1.0e10f32, 0.0, 0.0, 0.0, 0.0, 1.0, -1.0e-5f32,
        );
        assert!(ux.is_finite());
    }
}
