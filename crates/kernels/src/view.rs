//! Lightweight grid views passed to kernels.
//!
//! Kernels are agnostic of the mesh container: they see a flat slice, the
//! point-box lower corner, strides, and the per-axis staggering. The
//! driver crate builds these from `mrpic_amr::Fab`s.

use crate::real::Real;

/// Geometry of the region a kernel works in.
#[derive(Clone, Copy, Debug)]
pub struct Geom {
    /// Physical coordinate of the index-0 grid line, per axis \[m\].
    pub xmin: [f64; 3],
    /// Cell size per axis \[m\].
    pub dx: [f64; 3],
}

impl Geom {
    #[inline(always)]
    pub fn inv_dx(&self) -> [f64; 3] {
        [1.0 / self.dx[0], 1.0 / self.dx[1], 1.0 / self.dx[2]]
    }

    /// Particle position -> cell coordinate along axis `d`.
    #[inline(always)]
    pub fn xi<T: Real>(&self, d: usize, x: T) -> T {
        (x - T::from_f64(self.xmin[d])) * T::from_f64(1.0 / self.dx[d])
    }

    /// Cell volume \[m³\].
    #[inline(always)]
    pub fn dv(&self) -> f64 {
        self.dx[0] * self.dx[1] * self.dx[2]
    }
}

/// Read-only staggered field component.
#[derive(Clone, Copy)]
pub struct FieldView<'a, T> {
    pub data: &'a [T],
    /// Lower corner of the stored point box (including guards).
    pub lo: [i64; 3],
    /// x stride is 1; these are the y and z strides.
    pub nx: i64,
    pub nxy: i64,
    /// Per-axis: `true` = half (points at `(i + 1/2) dx`).
    pub half: [bool; 3],
}

impl<'a, T: Real> FieldView<'a, T> {
    #[inline(always)]
    pub fn idx(&self, i: i64, j: i64, k: i64) -> usize {
        ((k - self.lo[2]) * self.nxy + (j - self.lo[1]) * self.nx + (i - self.lo[0])) as usize
    }

    #[inline(always)]
    pub fn get(&self, i: i64, j: i64, k: i64) -> T {
        self.data[self.idx(i, j, k)]
    }

    /// Stagger offset of axis `d` in cell units (0.0 nodal, 0.5 half).
    #[inline(always)]
    pub fn off(&self, d: usize) -> f64 {
        if self.half[d] {
            0.5
        } else {
            0.0
        }
    }

    /// Stored points per axis, derived from the strides and data length.
    #[inline(always)]
    pub fn extent(&self) -> [i64; 3] {
        [
            self.nx,
            self.nxy / self.nx,
            self.data.len() as i64 / self.nxy,
        ]
    }
}

/// Mutable staggered field component (deposition target).
pub struct FieldViewMut<'a, T> {
    pub data: &'a mut [T],
    pub lo: [i64; 3],
    pub nx: i64,
    pub nxy: i64,
    pub half: [bool; 3],
}

impl<'a, T: Real> FieldViewMut<'a, T> {
    #[inline(always)]
    pub fn idx(&self, i: i64, j: i64, k: i64) -> usize {
        ((k - self.lo[2]) * self.nxy + (j - self.lo[1]) * self.nx + (i - self.lo[0])) as usize
    }

    #[inline(always)]
    pub fn add(&mut self, i: i64, j: i64, k: i64, v: T) {
        let ix = self.idx(i, j, k);
        self.data[ix] += v;
    }

    /// Fused accumulate: `self[i,j,k] += a * v` with a single rounding
    /// (one FMA instruction on targets that have it).
    #[inline(always)]
    pub fn madd(&mut self, i: i64, j: i64, k: i64, a: T, v: T) {
        let ix = self.idx(i, j, k);
        self.data[ix] = a.mul_add(v, self.data[ix]);
    }

    #[inline(always)]
    pub fn off(&self, d: usize) -> f64 {
        if self.half[d] {
            0.5
        } else {
            0.0
        }
    }

    /// Stored points per axis, derived from the strides and data length.
    #[inline(always)]
    pub fn extent(&self) -> [i64; 3] {
        [
            self.nx,
            self.nxy / self.nx,
            self.data.len() as i64 / self.nxy,
        ]
    }

    /// Reborrow as read-only.
    #[inline]
    pub fn as_view(&self) -> FieldView<'_, T> {
        FieldView {
            data: self.data,
            lo: self.lo,
            nx: self.nx,
            nxy: self.nxy,
            half: self.half,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_cell_coordinates() {
        let g = Geom {
            xmin: [1.0, 0.0, -2.0],
            dx: [0.5, 1.0, 0.25],
        };
        assert_eq!(g.xi::<f64>(0, 2.0), 2.0);
        assert_eq!(g.xi::<f64>(2, -1.0), 4.0);
        assert_eq!(g.dv(), 0.125);
    }

    #[test]
    fn view_indexing_matches_layout() {
        // 3x2x2 points, lo = (-1, 0, 0)
        let data: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let v = FieldView {
            data: &data,
            lo: [-1, 0, 0],
            nx: 3,
            nxy: 6,
            half: [true, false, false],
        };
        assert_eq!(v.get(-1, 0, 0), 0.0);
        assert_eq!(v.get(1, 0, 0), 2.0);
        assert_eq!(v.get(-1, 1, 0), 3.0);
        assert_eq!(v.get(-1, 0, 1), 6.0);
        assert_eq!(v.off(0), 0.5);
        assert_eq!(v.off(1), 0.0);
    }

    #[test]
    fn mut_view_accumulates() {
        let mut data = vec![0.0f64; 8];
        let mut v = FieldViewMut {
            data: &mut data,
            lo: [0, 0, 0],
            nx: 2,
            nxy: 4,
            half: [false; 3],
        };
        v.add(1, 1, 1, 2.0);
        v.add(1, 1, 1, 3.0);
        assert_eq!(v.as_view().get(1, 1, 1), 5.0);
    }
}
