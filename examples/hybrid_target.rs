//! The paper's science case (Fig. 1b / Fig. 7, scaled down): the hybrid
//! solid–gas target with mesh refinement.
//!
//! A dense foil (plasma mirror) sits behind a tenuous gas. The laser
//! crosses the gas, reflects off the foil and extracts high-charge
//! electron bunches (injection stage); the reflected pulse then drives a
//! wake in the gas that traps and accelerates them (acceleration stage).
//! An MR patch covers the foil; once the interaction is over the patch
//! is removed and the moving window follows the reflected pulse.
//!
//! Run with: `cargo run --release --example hybrid_target`

use mrpic::amr::{IndexBox, IntVect};
use mrpic::core::diag::{beam_charge, electron_spectrum, write_field_slice, FieldPick, TimeSeries};
use mrpic::core::laser::antenna_for_a0;
use mrpic::core::mr::MrConfig;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, SimulationBuilder};
use mrpic::core::species::Species;
use mrpic::field::fieldset::Dim;
use mrpic::kernels::constants::{critical_density, M_E, Q_E};

fn main() {
    let um = 1.0e-6;
    let dx = 0.1 * um;
    let nc = critical_density(0.8 * um);
    let nx = 256i64;
    let nz = 96i64;
    // Geometry (scaled ~100x down from the paper's run).
    let gas_x0 = 4.0 * um;
    let foil_x0 = 16.0 * um;
    let foil_x1 = 17.2 * um;
    let n_solid = 6.0 * nc; // paper: 50 n_c at 80x finer resolution
    let n_gas = 2.0e25; // scaled up vs paper's 2.34e24 (shorter wake)

    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(nx, 1, nz), [dx; 3], [0.0; 3])
        .periodic([false, false, true])
        .pml(10)
        .order(ShapeOrder::Quadratic)
        .cfl(0.6)
        .sort_interval(30)
        .add_species(Species::electrons(
            "solid",
            Profile::Slab {
                n0: n_solid,
                axis: 0,
                x0: foil_x0,
                x1: foil_x1,
            },
            [2, 1, 2],
        ))
        .add_species(Species::electrons(
            "gas",
            Profile::Ramped {
                n0: n_gas,
                axis: 0,
                up_start: gas_x0,
                up_end: gas_x0 + 2.0 * um,
                down_start: foil_x0,
                down_end: foil_x0,
            },
            [1, 1, 2],
        ))
        .add_laser({
            let mut l = antenna_for_a0(3.0, 0.8 * um, 9.0e-15, 1.6 * um, 4.8 * um, 3.0 * um);
            l.t_peak = 16.0e-15;
            l
        })
        .build();

    // MR patch over the foil (the high-resolution region).
    sim.add_mr_patch(MrConfig {
        patch: IndexBox::new(IntVect::new(140, 0, 0), IntVect::new(200, 1, nz)),
        rr: 2,
        n_transition: 3,
        npml: 8,
        subcycle: false,
    });

    println!(
        "hybrid target: gas {:.1e} m^-3 from {:.0} um, foil {:.0} n_c at {:.1}-{:.1} um",
        n_gas,
        gas_x0 / um,
        n_solid / nc,
        foil_x0 / um,
        foil_x1 / um
    );
    println!(
        "{} particles, dt = {:.2e} s (fine-grid CFL), MR patch active",
        sim.total_particles(),
        sim.dt
    );

    let out = std::path::PathBuf::from("target/hybrid_out");
    std::fs::create_dir_all(&out).unwrap();

    let mut charge_ts = TimeSeries::new("beam_charge_above_0.2MeV");
    let t_remove = 90.0e-15; // foil interaction over
    let t_end = 140.0e-15;
    let mut removed = false;
    let mut next_report = 0.0;
    while sim.time < t_end {
        sim.step();
        if !removed && sim.time >= t_remove {
            sim.remove_mr_patch();
            removed = true;
            println!(
                ">>> t = {:.0} fs: MR patch removed, dt -> {:.2e} s",
                sim.time / 1e-15,
                sim.dt
            );
        }
        if sim.time >= next_report {
            let q_solid = beam_charge(&sim.parts[0], -Q_E, M_E, 0.2).abs();
            charge_ts.push(sim.time, q_solid);
            println!(
                "t = {:6.1} fs | injected charge (solid e-, >0.2 MeV) = {:8.3e} C | laser peak = {:.2e}",
                sim.time / 1e-15,
                q_solid,
                sim.fs.e[1].max_abs(0)
            );
            next_report += 10.0e-15;
        }
    }

    // Fig. 7-style outputs.
    charge_ts
        .write_json(&out.join("charge_vs_time.json"))
        .unwrap();
    let spec_solid = electron_spectrum(&sim.parts[0], 10.0, 60);
    spec_solid
        .write_csv(&out.join("spectrum_solid.csv"))
        .unwrap();
    let spec_gas = electron_spectrum(&sim.parts[1], 10.0, 60);
    spec_gas.write_csv(&out.join("spectrum_gas.csv")).unwrap();
    write_field_slice(
        &sim.fs,
        FieldPick::E(1),
        0,
        &out.join("laser_snapshot.csv"),
        2,
    )
    .unwrap();

    let (peak_e, _) = spec_solid.peak();
    let (mean, spread) = spec_solid.mean_and_spread(0.2);
    let q_final = charge_ts.last().unwrap_or(0.0);
    println!("\n=== science summary (scaled analogue of Fig. 7) ===");
    println!(
        "injected charge from the solid: {:.3e} C ({:.2} pC)",
        q_final,
        q_final / 1e-12
    );
    println!("solid-electron spectrum: peak {peak_e:.2} MeV, mean {mean:.2} MeV, rms spread {spread:.2} MeV");
    if mean > 0.0 {
        println!("relative spread: {:.0}%", 100.0 * spread / mean);
    }
    println!("outputs in {}", out.display());
}
