//! PSATD spectral solver demo (paper Table I, last row).
//!
//! Shows the dispersion-free property that motivates the spectral solver
//! for boosted-frame runs: a pulse advected one full box crossing with
//! FDTD at its Courant limit accumulates phase error, while PSATD with a
//! time step 3x beyond the FDTD limit reproduces the initial condition
//! to machine precision.
//!
//! Run with: `cargo run --release --example psatd_demo`

use mrpic::amr::{BoxArray, IndexBox, IntVect, Periodicity};
use mrpic::field::cfl::max_dt;
use mrpic::field::fieldset::{Dim, FieldSet, GridGeom};
use mrpic::field::psatd::Psatd2d;
use mrpic::field::yee::step_fields;
use mrpic::kernels::constants::C;

fn main() {
    let n = 128usize;
    let dx = 1.0e-6;
    let k = 2.0 * std::f64::consts::PI / (8.0 * dx); // 8 cells per lambda!
    let wave = |x: f64| (k * x).sin();

    // --- FDTD at its Courant limit ---
    let dom = IndexBox::from_size(IntVect::new(n as i64, 1, 4));
    let geom = GridGeom {
        dx: [dx; 3],
        x0: [0.0; 3],
    };
    let mut fdtd = FieldSet::new(
        Dim::Two,
        BoxArray::single(dom),
        geom,
        Periodicity::new(dom, [true, false, true]),
        2,
    );
    let dt_fdtd = 0.99 * max_dt(Dim::Two, &[dx; 3]);
    for fi in 0..fdtd.nfabs() {
        let vb = fdtd.e[1].fab(fi).valid_pts();
        for p in vb.cells().collect::<Vec<_>>() {
            fdtd.e[1].fab_mut(fi).set(0, p, wave(p.x as f64 * dx));
        }
        let vb = fdtd.b[2].fab(fi).valid_pts();
        for p in vb.cells().collect::<Vec<_>>() {
            let x = (p.x as f64 + 0.5) * dx + C * dt_fdtd / 2.0;
            fdtd.b[2].fab_mut(fi).set(0, p, wave(x) / C);
        }
    }
    let crossing = n as f64 * dx / C;
    let steps_fdtd = (crossing / dt_fdtd).round() as usize;
    for _ in 0..steps_fdtd {
        step_fields(&mut fdtd, dt_fdtd);
    }
    let mut err_fdtd = 0.0;
    let mut norm = 0.0;
    for i in 0..n {
        let v = fdtd.e[1].at(0, IntVect::new(i as i64, 0, 2)).unwrap();
        let d = v - wave(i as f64 * dx);
        err_fdtd += d * d;
        norm += wave(i as f64 * dx).powi(2);
    }
    let err_fdtd = (err_fdtd / norm).sqrt();

    // --- PSATD at 3x the FDTD limit ---
    let mut spectral = Psatd2d::new(n, 4, dx, dx);
    let mut ey = vec![0.0; n * 4];
    let mut bz = vec![0.0; n * 4];
    for r in 0..4 {
        for i in 0..n {
            ey[r * n + i] = wave(i as f64 * dx);
            bz[r * n + i] = wave(i as f64 * dx) / C;
        }
    }
    let zeros = vec![0.0; n * 4];
    spectral.set_fields([&zeros, &ey, &zeros], [&zeros, &zeros, &bz]);
    let dt_psatd = 3.0 * dt_fdtd;
    let steps_psatd = (crossing / dt_psatd).round() as usize;
    // Land exactly on one crossing.
    let dt_exact = crossing / steps_psatd as f64;
    for _ in 0..steps_psatd {
        spectral.step(dt_exact, [&zeros, &zeros, &zeros]);
    }
    let (e, _) = spectral.get_fields();
    let mut err_psatd = 0.0;
    for (i, &ey) in e[1].iter().enumerate().take(n) {
        let d = ey - wave(i as f64 * dx);
        err_psatd += d * d;
    }
    let err_psatd = (err_psatd / norm).sqrt();

    println!("one full box crossing of an 8-cells/lambda wave:");
    println!(
        "  FDTD  (c dt = {:.2} dx): {} steps, L2 error {:.3e}",
        C * dt_fdtd / dx,
        steps_fdtd,
        err_fdtd
    );
    println!(
        "  PSATD (c dt = {:.2} dx): {} steps, L2 error {:.3e}",
        C * dt_exact / dx,
        steps_psatd,
        err_psatd
    );
    println!(
        "\nPSATD is dispersion-free: {:.0}x smaller error with {:.1}x fewer steps",
        err_fdtd / err_psatd.max(1e-300),
        steps_fdtd as f64 / steps_psatd as f64
    );
    assert!(err_psatd < 1e-6 && err_fdtd > 10.0 * err_psatd);
}
