//! Plasma-mirror reflection (the paper's Fig. 2 a–b).
//!
//! An intense pulse hits an overdense foil: the foil reflects the light
//! (plasma mirror) and the laser rips electron bunches off the surface.
//! Prints the reflectivity and the extracted hot-electron charge, and
//! writes snapshots before/during/after reflection.
//!
//! Run with: `cargo run --release --example plasma_mirror`

use mrpic::amr::IntVect;
use mrpic::core::diag::{beam_charge, write_field_slice, FieldPick};
use mrpic::core::laser::antenna_for_a0;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, SimulationBuilder};
use mrpic::core::species::Species;
use mrpic::field::fieldset::Dim;
use mrpic::kernels::constants::{critical_density, M_E, Q_E};

fn main() {
    let um = 1.0e-6;
    let dx = 0.04 * um;
    let nc = critical_density(0.8 * um);
    let nx = 384i64;
    let nz = 128i64;
    let foil_x0 = 9.0 * um;
    let foil_x1 = 10.0 * um;

    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(nx, 1, nz), [dx; 3], [0.0; 3])
        .periodic([false, false, true])
        .pml(10)
        .order(ShapeOrder::Cubic)
        .cfl(0.6)
        .sort_interval(25)
        .add_species(Species::electrons(
            "foil",
            Profile::Slab {
                n0: 8.0 * nc, // scaled-down solid (paper: 50-55 n_c)
                axis: 0,
                x0: foil_x0,
                x1: foil_x1,
            },
            [2, 1, 2],
        ))
        .add_laser({
            let mut l = antenna_for_a0(4.0, 0.8 * um, 10.0e-15, 2.0 * um, 2.56 * um, 2.0 * um);
            l.t_peak = 18.0e-15;
            l
        })
        .build();

    println!(
        "foil at {:.1}-{:.1} um, n = 8 n_c; laser a0 = {:.1}; {} particles",
        foil_x0 / um,
        foil_x1 / um,
        sim.lasers[0].a0(),
        sim.total_particles()
    );

    let out = std::path::PathBuf::from("target/plasma_mirror_out");
    std::fs::create_dir_all(&out).unwrap();

    // Energy arriving vs returning on a plane in front of the foil.
    let snapshots = [25.0e-15, 45.0e-15, 70.0e-15];
    let mut snap = 0;
    let t_end = 90.0e-15;
    let mut incident_peak = 0.0f64;
    let mut reflected_peak = 0.0f64;
    while sim.time < t_end {
        sim.step();
        // Laser field on the vacuum side of the foil.
        let probe_x = ((6.0 * um) / dx) as i64;
        let mut column_max = 0.0f64;
        for k in 0..nz {
            column_max = column_max.max(
                sim.fs.e[1]
                    .at(0, IntVect::new(probe_x, 0, k))
                    .unwrap()
                    .abs(),
            );
        }
        if sim.time < 40.0e-15 {
            incident_peak = incident_peak.max(column_max);
        } else {
            reflected_peak = reflected_peak.max(column_max);
        }
        if snap < snapshots.len() && sim.time >= snapshots[snap] {
            let tag = format!("t{:02.0}fs", sim.time / 1e-15);
            write_field_slice(
                &sim.fs,
                FieldPick::E(1),
                0,
                &out.join(format!("ey_{tag}.csv")),
                2,
            )
            .unwrap();
            write_field_slice(
                &sim.fs,
                FieldPick::J(0),
                0,
                &out.join(format!("jx_{tag}.csv")),
                2,
            )
            .unwrap();
            println!("t = {:4.0} fs: snapshot written ({tag})", sim.time / 1e-15);
            snap += 1;
        }
    }

    let reflectivity = (reflected_peak / incident_peak).powi(2);
    println!("\nincident peak field:  {incident_peak:.3e} V/m");
    println!("reflected peak field: {reflected_peak:.3e} V/m");
    println!(
        "intensity reflectivity: {:.0}%",
        100.0 * reflectivity.min(1.0)
    );

    let hot = beam_charge(&sim.parts[0], -Q_E, M_E, 0.1).abs();
    println!(
        "extracted charge above 0.1 MeV: {:.3e} C ({:.2} pC)",
        hot,
        hot / 1e-12
    );
    println!("outputs in {}", out.display());

    assert!(reflectivity > 0.2, "plasma mirror failed to reflect");
}
