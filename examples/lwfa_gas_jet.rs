//! Laser-wakefield acceleration in a gas jet (the paper's Fig. 1a).
//!
//! A short intense pulse drives a wake in a tenuous plasma; the moving
//! window follows it over many Rayleigh lengths. Prints the wake
//! amplitude and writes field/density slices plus the accelerated
//! electron spectrum to `target/lwfa_out/`.
//!
//! Run with: `cargo run --release --example lwfa_gas_jet`

use mrpic::amr::IntVect;
use mrpic::core::diag::{electron_spectrum, write_field_slice, FieldPick};
use mrpic::core::laser::antenna_for_a0;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, SimulationBuilder};
use mrpic::core::species::Species;
use mrpic::field::fieldset::Dim;
use mrpic::kernels::constants::{plasma_frequency, C};

fn main() {
    let um = 1.0e-6;
    let dx = 0.05 * um;
    // Scaled-down LWFA: high density so the wake fits a small box.
    let n0 = 1.0e26; // m^-3
    let wp = plasma_frequency(n0);
    let lambda_p = 2.0 * std::f64::consts::PI * C / wp;
    println!("plasma wavelength: {:.2} um", lambda_p / um);

    let nx = 384i64;
    let nz = 96i64;
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(nx, 1, nz), [dx; 3], [0.0; 3])
        .periodic([false, false, true])
        .pml(10)
        .order(ShapeOrder::Quadratic)
        .cfl(0.7)
        .moving_window(70.0e-15)
        .sort_interval(40)
        .add_species(Species::electrons(
            "gas",
            Profile::Ramped {
                n0,
                axis: 0,
                up_start: 6.0 * um,
                up_end: 8.0 * um,
                down_start: 400.0 * um,
                down_end: 400.0 * um,
            },
            [1, 1, 2],
        ))
        .add_laser({
            let mut l = antenna_for_a0(3.0, 0.8 * um, 8.0e-15, 2.0 * um, 2.4 * um, 3.0 * um);
            l.t_peak = 14.0e-15;
            l
        })
        .build();

    println!(
        "domain {}x{} cells, dx = {} nm, {} particles, dt = {:.2e} s",
        nx,
        nz,
        dx / 1e-9,
        sim.total_particles(),
        sim.dt
    );

    let out = std::path::PathBuf::from("target/lwfa_out");
    std::fs::create_dir_all(&out).unwrap();
    let t_end = 200.0e-15;
    let mut next_report = 0.0;
    while sim.time < t_end {
        sim.step();
        if sim.time >= next_report {
            let ex_max = sim.fs.e[0].max_abs(0); // wakefield (longitudinal)
            let ey_max = sim.fs.e[1].max_abs(0); // laser
            println!(
                "t = {:6.1} fs | window x0 = {:6.2} um | laser = {:.2e} V/m | wake Ex = {:.2e} V/m | np = {}",
                sim.time / 1e-15,
                sim.fs.geom.x0[0] / um,
                ey_max,
                ex_max,
                sim.total_particles(),
            );
            next_report += 20.0e-15;
        }
    }

    // The wake should reach a sizable fraction of the cold wavebreaking
    // field E0 = me c wp / e.
    let e_wb = mrpic::kernels::constants::M_E * C * wp / mrpic::kernels::constants::Q_E;
    let ex_max = sim.fs.e[0].max_abs(0);
    println!("\nwakebreaking field E0 = {e_wb:.2e} V/m");
    println!(
        "peak wake Ex         = {ex_max:.2e} V/m ({:.0}% of E0)",
        100.0 * ex_max / e_wb
    );

    write_field_slice(&sim.fs, FieldPick::E(1), 0, &out.join("laser_ey.csv"), 2).unwrap();
    write_field_slice(&sim.fs, FieldPick::E(0), 0, &out.join("wake_ex.csv"), 2).unwrap();
    let spec = electron_spectrum(&sim.parts[0], 20.0, 80);
    spec.write_csv(&out.join("spectrum.csv")).unwrap();
    let (peak_e, _) = spec.peak();
    println!("spectrum written; peak bin at {peak_e:.2} MeV");
    println!("outputs in {}", out.display());
}
