//! Quickstart: a uniform plasma oscillating at its plasma frequency.
//!
//! Demonstrates the minimal mrpic workflow — build a simulation, step
//! it, read diagnostics — and prints the capability self-check of the
//! paper's Table I.
//!
//! Run with: `cargo run --release --example quickstart`

use mrpic::amr::IntVect;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, SimulationBuilder};
use mrpic::core::species::Species;
use mrpic::field::fieldset::Dim;
use mrpic::kernels::constants::plasma_frequency;

fn main() {
    println!("mrpic {} — quickstart\n", mrpic::VERSION);

    // Capability self-check (paper Table I, WarpX column).
    println!("capabilities:");
    for (cap, how) in [
        (
            "high-order particle shapes",
            "ShapeOrder::{Linear,Quadratic,Cubic}",
        ),
        ("moving window", "SimulationBuilder::moving_window"),
        (
            "single-source CPU kernels",
            "mrpic-kernels (generic over f32/f64)",
        ),
        ("dynamic load balancing", "core::balance + LbPolicyCfg"),
        ("mesh refinement", "Simulation::add_mr_patch"),
        ("boosted frame", "core::boost::Boost"),
        ("PSATD field solver", "field::psatd::Psatd2d"),
        ("MR subcycling", "MrConfig { subcycle: true, .. }"),
        ("current smoothing", "SimulationBuilder::filter_passes"),
        ("field (ADK) ionization", "core::ionization"),
        ("particle split/merge", "core::resample"),
        ("checkpoint/restart", "core::checkpoint"),
    ] {
        println!("  [x] {cap:<28} {how}");
    }
    println!();

    // A 2-D uniform electron plasma with a small drift: the textbook
    // cold plasma oscillation.
    let n0 = 1.0e25; // m^-3
    let wp = plasma_frequency(n0);
    let dx = 0.5e-6;
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(64, 1, 16), [dx; 3], [0.0; 3])
        .periodic([true, true, true])
        .order(ShapeOrder::Quadratic)
        .cfl(0.5)
        .add_species(
            Species::electrons("electrons", Profile::Uniform { n0 }, [2, 1, 2])
                .with_drift([1.0e6, 0.0, 0.0]),
        )
        .build();

    println!(
        "domain 64x16 cells, {} macroparticles, dt = {:.2e} s",
        sim.total_particles(),
        sim.dt
    );
    println!(
        "expected plasma period: {:.1} steps\n",
        2.0 * std::f64::consts::PI / (wp * sim.dt)
    );

    // Track Ex at a probe over ~2 plasma periods.
    let steps = (2.2 * 2.0 * std::f64::consts::PI / (wp * sim.dt)) as usize;
    let probe = IntVect::new(32, 0, 8);
    let mut trace = Vec::with_capacity(steps);
    for _ in 0..steps {
        sim.step();
        trace.push(sim.fs.e[0].at(0, probe).unwrap());
    }

    // Crude period measurement from mean-crossings.
    let mean: f64 = trace.iter().sum::<f64>() / trace.len() as f64;
    let crossings: Vec<usize> = (1..trace.len())
        .filter(|&i| trace[i - 1] < mean && trace[i] >= mean)
        .collect();
    if crossings.len() >= 2 {
        let period =
            (crossings[crossings.len() - 1] - crossings[0]) as f64 / (crossings.len() - 1) as f64;
        let wp_meas = 2.0 * std::f64::consts::PI / (period * sim.dt);
        println!("measured plasma frequency: {wp_meas:.3e} rad/s");
        println!("analytic  plasma frequency: {wp:.3e} rad/s");
        println!("relative error: {:.2}%", 100.0 * (wp_meas / wp - 1.0).abs());
    } else {
        println!("warning: oscillation not resolved");
    }

    let (fe, ke) = sim.total_energy();
    println!("\nfinal field energy:   {fe:.3e} J");
    println!("final kinetic energy: {ke:.3e} J");
}
