//! Ionization injection (the technique of the paper's refs [11]–[13]).
//!
//! A nitrogen dopant sits in the wake-driving gas: the laser's rising
//! edge strips the five L-shell electrons everywhere it passes, but the
//! two K-shell electrons (552 / 667 eV) ionize only near the intensity
//! peak — born at rest *inside* the wake where they can be trapped. This
//! example drives an intense pulse through a nitrogen-doped region and
//! shows the two ionization populations separating.
//!
//! Run with: `cargo run --release --example ionization_injection`

use mrpic::amr::{IndexBox, IntVect};
use mrpic::core::ionization::{barrier_suppression_field, Element, IonReservoir};
use mrpic::core::laser::antenna_for_a0;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, SimulationBuilder};
use mrpic::core::species::{inject, Species};
use mrpic::field::fieldset::Dim;

fn main() {
    let um = 1.0e-6;
    let dx = 0.05 * um;
    let n = Element::nitrogen();
    println!("nitrogen ionization thresholds (barrier suppression):");
    for (lv, &ip) in n.ionization_ev.iter().enumerate() {
        println!(
            "  N{}+ -> N{}+ : I_p = {:6.1} eV, E_BSI = {:.2e} V/m",
            lv,
            lv + 1,
            ip,
            barrier_suppression_field(ip, lv as u8 + 1)
        );
    }

    let a0 = 2.0;
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(384, 1, 64), [dx; 3], [0.0; 3])
        .periodic([false, false, true])
        .pml(10)
        .order(ShapeOrder::Quadratic)
        .cfl(0.7)
        .add_species(Species::electrons(
            "ionized", // receives the newborn electrons
            Profile::Uniform { n0: 0.0 },
            [1, 1, 1],
        ))
        .add_laser({
            let mut l = antenna_for_a0(a0, 0.8 * um, 8.0e-15, 1.5 * um, 1.6 * um, 2.5 * um);
            l.t_peak = 14.0e-15;
            l
        })
        .build();
    println!(
        "\nlaser: a0 = {a0} (E0 = {:.2e} V/m) -> strips L-shell everywhere,",
        sim.lasers[0].e0
    );
    println!(
        "K-shell (E_BSI = {:.2e} V/m) only near the axis/peak",
        barrier_suppression_field(552.07, 6)
    );

    // Neutral nitrogen dopant between 8 and 14 um.
    let mut ions = mrpic::core::particles::ParticleContainer::new(sim.fs.nfabs());
    let dopant = Species::electrons("n2", Profile::Uniform { n0: 2.0e24 }, [1, 1, 2]);
    let region = IndexBox::new(IntVect::new(160, 0, 0), IntVect::new(280, 1, 64));
    inject(
        &dopant,
        Dim::Two,
        &sim.fs.geom,
        &sim.fs.boxarray().clone(),
        &region,
        &mut ions,
        23,
    );
    let mut res = IonReservoir::new(n, ions, 5);
    println!("\n{} macro-ions in the dopant region", res.ions.total());

    let t_end = 50.0e-15;
    let mut next = 5.0e-15;
    while sim.time < t_end {
        sim.step();
        mrpic::core::ionization::ionize(&mut sim, &mut res, 0);
        if sim.time >= next {
            println!(
                "t = {:5.1} fs | mean charge state {:.2} | released e- (weighted) {:.3e} | laser peak {:.2e}",
                sim.time / 1e-15,
                res.mean_level(),
                res.released_weight(),
                sim.fs.e[1].max_abs(0)
            );
            next += 5.0e-15;
        }
    }

    // Population split: count macro-ions at exactly 5 (L-shell stripped)
    // vs 6-7 (K-shell reached).
    let mut hist = [0usize; 8];
    for lv in &res.levels {
        for &l in lv {
            hist[l as usize] += 1;
        }
    }
    println!("\ncharge-state histogram after the pulse:");
    for (l, &c) in hist.iter().enumerate() {
        if c > 0 {
            println!("  N{l}+ : {c}");
        }
    }
    let l_shell: usize = hist[1..=5].iter().sum();
    let k_shell: usize = hist[6..=7].iter().sum();
    println!("\nL-shell-only ions: {l_shell}, K-shell-reached ions: {k_shell}");
    println!(
        "K-shell electrons are born at the intensity peak — the localized\n\
         injection that refs [11]-[13] of the paper exploit."
    );
    assert!(l_shell > 0, "the pulse should strip the L shell");
}
