//! Boosted-frame wakefield modeling (paper Table I, "Boosted frame";
//! §VIII-B: "several orders of magnitude speedups over standard
//! laboratory-frame modeling").
//!
//! Demonstrates the input transforms: the same physical stage is set up
//! in the lab frame and in a gamma-boosted frame, and the step-count
//! bookkeeping shows the speedup. A short boosted run verifies the
//! plasma actually streams backward at the boost velocity.
//!
//! Run with: `cargo run --release --example boosted_frame`

use mrpic::amr::IntVect;
use mrpic::core::boost::Boost;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, SimulationBuilder};
use mrpic::core::species::Species;
use mrpic::field::fieldset::Dim;
use mrpic::kernels::constants::C;

fn main() {
    let gamma_boost = 5.0;
    let b = Boost::new(gamma_boost);
    let n_lab = 1.0e24; // m^-3
    let stage_lab = 10.0e-3; // a 10 mm LWFA stage
    let lambda_lab = 0.8e-6;

    println!("boosted-frame transform (gamma = {gamma_boost}):");
    let (n_boost, u_drift) = b.plasma(n_lab);
    println!("  plasma density:   {n_lab:.2e} -> {n_boost:.2e} m^-3 (contracted)");
    println!(
        "  plasma drift:     0 -> {:.3e} m/s (u = gamma v, backward)",
        u_drift
    );
    println!(
        "  laser wavelength: {:.2} um -> {:.2} um (red-shifted)",
        lambda_lab / 1e-6,
        b.laser_wavelength(lambda_lab) / 1e-6
    );
    println!(
        "  stage length:     {:.1} mm -> {:.2} mm (contracted)",
        stage_lab / 1e-3,
        b.stage_length(stage_lab) / 1e-3
    );
    println!(
        "  step-count speedup estimate: {:.0}x (the paper's 'orders of magnitude')",
        b.step_count_speedup()
    );

    // Short boosted-frame run: a drifting plasma streams through a
    // periodic box; verify its mean velocity matches -beta c.
    let dx = 1.0e-6;
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(32, 1, 8), [dx; 3], [0.0; 3])
        .periodic([true, true, true])
        .order(ShapeOrder::Quadratic)
        .cfl(0.5)
        .add_species(
            Species::electrons(
                "boosted-plasma",
                Profile::Uniform { n0: n_boost },
                [1, 1, 1],
            )
            .with_drift([u_drift, 0.0, 0.0]),
        )
        .build();
    let mean_vx = |sim: &mrpic::core::sim::Simulation| {
        let mut vsum = 0.0;
        let mut n = 0;
        for buf in &sim.parts[0].bufs {
            for i in 0..buf.len() {
                let g = mrpic::kernels::push::gamma_of_u(buf.ux[i], buf.uy[i], buf.uz[i]);
                vsum += buf.ux[i] / g;
                n += 1;
            }
        }
        vsum / n as f64
    };
    let v_expect = -b.beta() * C;
    let v_init = mean_vx(&sim);
    println!(
        "\nboosted-frame plasma initialized at vx = {:.4e} m/s (expected {:.4e})",
        v_init, v_expect
    );
    assert!((v_init / v_expect - 1.0).abs() < 0.01);
    // A uniform drifting electron slab oscillates at the (boosted)
    // plasma frequency: run a stretch and verify the drift stays bounded
    // by the initial |beta c| (no numerical heating/runaway).
    let steps = 40;
    sim.run(steps);
    let v_late = mean_vx(&sim);
    println!(
        "after {steps} steps: mean vx = {:.4e} m/s (plasma oscillation, |v| <= beta c)",
        v_late
    );
    assert!(
        v_late.abs() <= 1.02 * v_expect.abs(),
        "runaway drift: {v_late:e}"
    );
    println!("relativistic streaming plasma is stable in the boosted frame");
}
