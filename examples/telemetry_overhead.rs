//! Telemetry overhead measurement: the <2 % budget check.
//!
//! Machine noise between separate bench invocations easily exceeds the
//! telemetry overhead itself, so this measures A/B in one process with
//! interleaved blocks: two identical simulations, one with telemetry at
//! its defaults (sentinel every step, probes every 20) and one with the
//! subsystem off, alternating short step blocks so slow drift (thermal,
//! co-tenants) cancels out of the comparison.
//!
//! Run with: `cargo run --release --example telemetry_overhead`

use mrpic::amr::{IndexBox, IntVect};
use mrpic::core::laser::antenna_for_a0;
use mrpic::core::mr::MrConfig;
use mrpic::core::profile::Profile;
use mrpic::core::sim::{ShapeOrder, Simulation, SimulationBuilder};
use mrpic::core::species::Species;
use mrpic::field::fieldset::Dim;
use mrpic::kernels::constants::critical_density;
use std::time::Instant;

const UM: f64 = 1.0e-6;

fn build_uniform() -> Simulation {
    SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(64, 1, 64), [0.1 * UM; 3], [0.0; 3])
        .periodic([true, true, true])
        .max_box(IntVect::new(32, 1, 32))
        .order(ShapeOrder::Quadratic)
        .cfl(0.6)
        .add_species(
            Species::electrons("e", Profile::Uniform { n0: 2.0e25 }, [2, 1, 2])
                .with_thermal([1.0e6; 3]),
        )
        .build()
}

fn build_mr() -> Simulation {
    let h = 0.1 * UM;
    let nc = critical_density(0.8 * UM);
    let mut sim = SimulationBuilder::new(Dim::Two)
        .domain(IntVect::new(128, 1, 32), [h, h, h], [0.0; 3])
        .periodic([false, false, true])
        .pml(8)
        .max_box(IntVect::new(64, 1, 32))
        .order(ShapeOrder::Quadratic)
        .cfl(0.6)
        .add_species(Species::electrons(
            "solid",
            Profile::Slab {
                n0: 5.0 * nc,
                axis: 0,
                x0: 7.0 * UM,
                x1: 8.0 * UM,
            },
            [2, 1, 2],
        ))
        .add_species(Species::electrons(
            "gas",
            Profile::Ramped {
                n0: 2.0e25,
                axis: 0,
                up_start: 2.0 * UM,
                up_end: 3.0 * UM,
                down_start: 7.0 * UM,
                down_end: 7.0 * UM,
            },
            [1, 1, 1],
        ))
        .add_laser(antenna_for_a0(
            2.0,
            0.8 * UM,
            8.0e-15,
            1.0 * UM,
            1.6 * UM,
            2.0 * UM,
        ))
        .build();
    let i0 = (6.0 * UM / h) as i64;
    let i1 = (9.0 * UM / h) as i64;
    let nzc = sim.fs.domain().hi.z;
    sim.add_mr_patch(MrConfig {
        patch: IndexBox::new(IntVect::new(i0, 0, 0), IntVect::new(i1, 1, nzc)),
        rr: 2,
        n_transition: 3,
        npml: 8,
        subcycle: false,
    });
    sim
}

/// Interleaved A/B: alternate `block`-step blocks between the two sims,
/// `rounds` times each, and return (seconds_on, seconds_off) per step.
/// `probes`/`sentinel` control which guard halves run in the "on" sim.
fn measure(
    mut on: Simulation,
    mut off: Simulation,
    probes: bool,
    sentinel: bool,
    block: usize,
    rounds: usize,
) -> (f64, f64) {
    if !probes {
        on.telemetry.cfg.probe_interval = 0;
    }
    if !sentinel {
        on.telemetry.cfg.sentinel_interval = 0;
    }
    off.telemetry.cfg.enabled = false;
    on.run(3);
    off.run(3);
    // Both sims step the same step range inside each round, so the
    // per-round time ratio is a paired measurement; its median is robust
    // against noise spikes. `block` must be a multiple of the probe
    // cadence so every round carries the same number of probe firings.
    let (mut r_on, mut r_off) = (Vec::new(), Vec::new());
    for round in 0..rounds {
        // Alternate which sim goes first so a systematic first-runner
        // advantage (cache refill, frequency ramp) cancels over rounds.
        let timed = |sim: &mut Simulation, out: &mut Vec<f64>| {
            let t0 = Instant::now();
            for _ in 0..block {
                sim.step();
            }
            out.push(t0.elapsed().as_secs_f64());
        };
        if round % 2 == 0 {
            timed(&mut on, &mut r_on);
            timed(&mut off, &mut r_off);
        } else {
            timed(&mut off, &mut r_off);
            timed(&mut on, &mut r_on);
        }
    }
    assert!(!on.telemetry.tripped(), "guard tripped during overhead run");
    let med = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let ratio = med(r_on
        .iter()
        .zip(&r_off)
        .map(|(a, b)| a / b)
        .collect::<Vec<_>>());
    let t_off = med(r_off) / block as f64;
    (ratio * t_off, t_off)
}

fn main() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        println!("telemetry overhead (single thread, defaults: sentinel/step, probes/20):");
        let variants: [(&str, bool, bool); 3] = [
            ("defaults", true, true),
            ("sentinel only", false, true),
            ("probes only", true, false),
        ];
        for name in ["uniform_plasma", "mr_hybrid_target"] {
            for (variant, probes, sentinel) in variants {
                let (on, off) = if name == "uniform_plasma" {
                    (build_uniform(), build_uniform())
                } else {
                    (build_mr(), build_mr())
                };
                let (t_on, t_off) = measure(on, off, probes, sentinel, 20, 40);
                println!(
                    "  {name:18} {variant:14} on {:8.3} ms/step | off {:8.3} ms/step | overhead {:+.2}%",
                    1e3 * t_on,
                    1e3 * t_off,
                    100.0 * (t_on / t_off - 1.0),
                );
            }
        }
        println!("budget: < 2% on both workloads with defaults");
    });
}
